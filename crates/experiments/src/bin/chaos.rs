//! Chaos soak: a strategy × fault-preset matrix with invariant checks.
//!
//! ```text
//! chaos [--smoke] [--seed N] [--sim MINUTES]
//! ```
//!
//! Every cell runs Rpcc/Push/Pull under one of the fault presets
//! (`bursty`, `partition`, `crash`, `crash-heavy`, `hostile`) with the
//! hardened protocol
//! knobs on, **twice with the same seed**, and asserts:
//!
//! 1. **No panics** — the run completes under every fault plan.
//! 2. **Exact accounting** — `queries_issued == served + failed` (and the
//!    same for writes), i.e. faults never leak or double-count a query.
//! 3. **Determinism** — the two same-seed runs produce byte-identical
//!    JSON reports: fault injection draws only from its own stream.
//! 4. **Schedule integrity** — every partition window that opened also
//!    healed, and every crash recovered, within the run.
//!
//! The full soak additionally re-runs the `partition` preset with the
//! measurement window starting only after heal + TTP + TTN, asserting the
//! Δ-staleness bound is re-established once the partition heals.
//!
//! `--smoke` shrinks the matrix to a 2-minute `hostile` run per strategy
//! (still double-run for determinism) so CI can afford it.
//!
//! Exit status is non-zero the moment any invariant fails.

use mp2p_experiments::{cli, render_table};
use mp2p_net::FaultPlan;
use mp2p_rpcc::{RunReport, Strategy, World, WorldConfig};
use mp2p_sim::SimDuration;

/// One soak cell's scenario: a scaled-down Table 1 point with the
/// hardened protocol and the given fault preset installed.
fn cell_config(strategy: Strategy, preset: &str, seed: u64, sim: SimDuration) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.n_peers = 20;
    cfg.terrain = mp2p_mobility::Terrain::new(900.0, 900.0);
    cfg.c_num = 5;
    cfg.sim_time = sim;
    cfg.warmup = SimDuration::from_secs_f64((sim.as_secs_f64() * 0.15).max(30.0));
    cfg.strategy = strategy;
    cfg.proto = cfg.proto.hardened();
    cfg.faults = FaultPlan::preset(preset, sim).expect("preset names come from PRESETS");
    cfg
}

/// Runs one cell twice and checks the invariants; returns the first
/// run's report. Pushes a message per violation instead of panicking so
/// one broken cell doesn't mask the rest of the matrix.
fn soak_cell(cfg: WorldConfig, violations: &mut Vec<String>) -> RunReport {
    let label = format!("{}/{}", cfg.strategy, cfg.faults.label);
    let first = World::new(cfg.clone()).run();
    let second = World::new(cfg).run();
    if first.to_json() != second.to_json() {
        violations.push(format!("{label}: same-seed runs differ (non-determinism)"));
    }
    if first.queries_issued != first.queries_served() + first.queries_failed {
        violations.push(format!(
            "{label}: accounting leak — issued {} != served {} + failed {}",
            first.queries_issued,
            first.queries_served(),
            first.queries_failed
        ));
    }
    if first.writes_issued != first.writes_completed() + first.writes_failed {
        violations.push(format!(
            "{label}: write accounting leak — issued {} != acked {} + failed {}",
            first.writes_issued,
            first.writes_completed(),
            first.writes_failed
        ));
    }
    if first.faults.partitions_started != first.faults.partitions_healed {
        violations.push(format!(
            "{label}: {} partitions opened but {} healed",
            first.faults.partitions_started, first.faults.partitions_healed
        ));
    }
    if first.faults.crashes != first.faults.recoveries {
        violations.push(format!(
            "{label}: {} crashes but {} recoveries",
            first.faults.crashes, first.faults.recoveries
        ));
    }
    first
}

/// After a partition heals, RPCC's Δ-guarantee must re-establish itself:
/// with the measurement window opening only after heal + TTP + TTN, no
/// served answer may be staler than the friendly-run bound.
fn heal_convergence_check(seed: u64, violations: &mut Vec<String>) {
    let sim = SimDuration::from_mins(25);
    let mut cfg = cell_config(Strategy::Rpcc, "partition", seed, sim);
    let heal = cfg.faults.partitions[0].heal;
    let settle = cfg.proto.ttp + cfg.proto.ttn + SimDuration::from_secs(30);
    cfg.warmup = heal.saturating_since(mp2p_sim::SimTime::ZERO) + settle;
    assert!(cfg.warmup < cfg.sim_time, "soak scenario leaves a window");
    let report = World::new(cfg.clone()).run();
    let bound = cfg.proto.ttp + cfg.proto.ttn + SimDuration::from_secs(15);
    if report.audit.max_staleness() > bound {
        violations.push(format!(
            "heal convergence: max staleness {:.1}s exceeds the {:.1}s bound after heal",
            report.audit.max_staleness().as_secs_f64(),
            bound.as_secs_f64()
        ));
    }
}

fn main() {
    let fail = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let args = cli::Args::from_env();
    let smoke = args.flag("--smoke");
    let seed = args
        .u64_of("--seed")
        .unwrap_or_else(|e| fail(e))
        .unwrap_or(42);
    let sim_mins = args
        .f64_of("--sim")
        .unwrap_or_else(|e| fail(e))
        .unwrap_or(if smoke { 2.0 } else { 10.0 });
    let sim = SimDuration::from_secs_f64(sim_mins * 60.0);

    let strategies = [Strategy::Rpcc, Strategy::Push, Strategy::Pull];
    let presets: &[&str] = if smoke {
        &["hostile"]
    } else {
        &FaultPlan::PRESETS
    };
    println!(
        "Chaos soak: {} strategies x {} presets, {sim} per run, two same-seed runs per cell (seed {seed})",
        strategies.len(),
        presets.len()
    );

    let mut violations = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &preset in presets {
        for strategy in strategies {
            let report = soak_cell(cell_config(strategy, preset, seed, sim), &mut violations);
            rows.push(vec![
                preset.to_string(),
                strategy.to_string(),
                report.queries_issued.to_string(),
                report.queries_served().to_string(),
                report.queries_failed.to_string(),
                report.faults.burst_drops.to_string(),
                report.faults.frames_duplicated.to_string(),
                format!("{}/{}", report.faults.crashes, report.faults.recoveries),
                report.faults.lease_expiries.to_string(),
                report.faults.fallback_floods.to_string(),
            ]);
        }
    }
    if !smoke {
        heal_convergence_check(seed, &mut violations);
    }

    print!(
        "{}",
        render_table(
            &[
                "preset",
                "strategy",
                "issued",
                "served",
                "failed",
                "burst",
                "dups",
                "crash/rec",
                "leases",
                "floods",
            ],
            &rows
        )
    );

    if violations.is_empty() {
        let cells = rows.len();
        println!("\nchaos soak passed: {cells} cells, all invariants held");
    } else {
        for v in &violations {
            eprintln!("INVARIANT VIOLATED: {v}");
        }
        std::process::exit(1);
    }
}
