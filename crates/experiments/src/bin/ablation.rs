//! Ablation studies of the reproduction's design choices (DESIGN.md §5/§6)
//! and the paper's future-work extensions: `ablation [--full]`.
//!
//! Four studies, each a one-knob sweep at the Table 1 default point:
//!
//! 1. **Demotion hysteresis** — the paper's literal one-failing-tick
//!    demotion vs the grace used here.
//! 2. **POLL ring start TTL** — how wide the first poll should cast.
//! 3. **Adaptive frequencies** (future work §6.1) — off vs on, at slow
//!    and fast update rates.
//! 4. **Relay admission cap** (future work §6.2) — uncapped vs 1/2/4
//!    relays per item.

use mp2p_experiments::{render_table, RunOptions};
use mp2p_rpcc::{LevelMix, RoutingMode, RunReport, Strategy, World, WorldConfig};
use mp2p_sim::SimDuration;

fn base(opts: RunOptions, seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.sim_time = opts.sim_time;
    cfg.warmup = opts.warmup;
    cfg.strategy = Strategy::Rpcc;
    cfg.level_mix = LevelMix::strong_only();
    cfg
}

fn row(name: &str, r: &RunReport) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{:.0}", r.traffic_per_minute()),
        format!("{:.3}", r.mean_latency_secs()),
        format!("{:.3}", r.failure_rate()),
        format!("{:.1}", r.relay_gauge.mean()),
        format!("{:.3}", 1.0 - r.audit.fresh_fraction()),
    ]
}

const HEADERS: [&str; 6] = ["variant", "tx/min", "latency(s)", "fail", "relays", "stale"];

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let opts = if full {
        RunOptions::full()
    } else {
        RunOptions::quick()
    };
    let seed = 42;

    println!("=== Ablation 1: relay demotion hysteresis (paper literal = 1 tick)");
    let mut rows = Vec::new();
    for ticks in [1u8, 2, 4] {
        let mut cfg = base(opts, seed);
        cfg.proto.demote_grace_ticks = ticks;
        rows.push(row(
            &format!("{ticks} failing tick(s)"),
            &World::new(cfg).run(),
        ));
    }
    print!("{}", render_table(&HEADERS, &rows));

    println!("\n=== Ablation 2: POLL ring starting TTL (paper: 'broadcast POLL', scope open)");
    let mut rows = Vec::new();
    for ttl in [1u8, 2, 4, 8] {
        let mut cfg = base(opts, seed);
        cfg.proto.poll_ttl = ttl;
        rows.push(row(&format!("first TTL {ttl}"), &World::new(cfg).run()));
    }
    print!("{}", render_table(&HEADERS, &rows));

    println!("\n=== Ablation 3: adaptive push/pull frequency (future work 6.1)");
    let mut rows = Vec::new();
    for (label, update, adaptive) in [
        ("fixed, updates 2min", 120u64, false),
        ("adaptive, updates 2min", 120, true),
        ("fixed, updates 15min", 900, false),
        ("adaptive, updates 15min", 900, true),
    ] {
        let mut cfg = base(opts, seed);
        cfg.level_mix = LevelMix::delta_only();
        cfg.i_update = SimDuration::from_secs(update);
        cfg.proto.adaptive = adaptive;
        rows.push(row(label, &World::new(cfg).run()));
    }
    print!("{}", render_table(&HEADERS, &rows));

    println!("\n=== Ablation 4: relay admission cap (future work 6.2)");
    let mut rows = Vec::new();
    for cap in [None, Some(1usize), Some(2), Some(4)] {
        let mut cfg = base(opts, seed);
        cfg.proto.max_relays_per_item = cap;
        let label = match cap {
            None => "uncapped (paper)".to_string(),
            Some(n) => format!("cap {n}/item"),
        };
        rows.push(row(&label, &World::new(cfg).run()));
    }
    print!("{}", render_table(&HEADERS, &rows));

    println!("\n=== Ablation 5: routing substrate (on-demand vs omniscient oracle)");
    let mut rows = Vec::new();
    for strategy in [
        Strategy::Rpcc,
        Strategy::Push,
        Strategy::Pull,
        Strategy::PushAdaptivePull,
    ] {
        for routing in [RoutingMode::OnDemand, RoutingMode::Oracle] {
            let mut cfg = base(opts, seed);
            cfg.strategy = strategy;
            cfg.routing = routing;
            let label = format!(
                "{} / {}",
                strategy.label(),
                if routing == RoutingMode::Oracle {
                    "oracle"
                } else {
                    "on-demand"
                }
            );
            rows.push(row(&label, &World::new(cfg).run()));
        }
    }
    print!("{}", render_table(&HEADERS, &rows));
    println!("(the gap between rows is the price of real route discovery)");
}
