//! Regenerates Fig. 9 (impact of invalidation TTL): `fig9 [--full]`.
//!
//! Panel (a) is the traffic column, panel (b) the latency column; push
//! and pull appear as flat reference lines, as in the paper.

use std::path::PathBuf;

use mp2p_experiments::{fig9, render_series_table, write_csv, RunOptions};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let opts = if full {
        RunOptions::full()
    } else {
        RunOptions::quick()
    };
    let fig = fig9(opts);
    println!("\n{} — {}", fig.id, fig.caption);
    println!("\nFig 9(a): network traffic");
    print!(
        "{}",
        render_series_table(fig.x_label, &fig.series, |p| p.traffic_per_min, "")
    );
    println!("(transmissions per simulated minute)");
    println!("\nFig 9(b): query latency");
    print!(
        "{}",
        render_series_table(fig.x_label, &fig.series, |p| p.latency_s, "s")
    );
    println!("(mean query latency over served queries)");
    let file = PathBuf::from("results").join("fig9.csv");
    match write_csv(&file, fig.id, &fig.series) {
        Ok(()) => println!("wrote {}", file.display()),
        Err(e) => eprintln!("could not write {}: {e}", file.display()),
    }
}
