//! Regenerates Fig. 7 (network traffic): `fig7 [a|b|c] [--full]`.
//!
//! Without a panel argument all three panels run. `--full` uses the
//! paper's 5-hour runs; the default is a 45-minute quick mode.

use std::path::PathBuf;

use mp2p_experiments::{
    fig7a, fig7b, fig7c, render_series_table, write_csv, FigureData, RunOptions,
};

fn emit(fig: FigureData) {
    println!("\n{} — {}", fig.id, fig.caption);
    print!(
        "{}",
        render_series_table(fig.x_label, &fig.series, |p| p.traffic_per_min, "")
    );
    println!("(transmissions per simulated minute; every MAC-level hop counted)");
    let file = PathBuf::from("results").join(format!(
        "{}.csv",
        fig.id.to_lowercase().replace([' ', '(', ')'], "")
    ));
    match write_csv(&file, fig.id, &fig.series) {
        Ok(()) => println!("wrote {}", file.display()),
        Err(e) => eprintln!("could not write {}: {e}", file.display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let opts = if full {
        RunOptions::full()
    } else {
        RunOptions::quick()
    };
    let panel = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str);
    match panel {
        Some("a") => emit(fig7a(opts)),
        Some("b") => emit(fig7b(opts)),
        Some("c") => emit(fig7c(opts)),
        None => {
            emit(fig7a(opts));
            emit(fig7b(opts));
            emit(fig7c(opts));
        }
        Some(other) => {
            eprintln!("unknown panel {other:?}; use a, b or c");
            std::process::exit(2);
        }
    }
}
