//! Free-form scenario runner: every interesting knob on the command line.
//!
//! ```text
//! run [--strategy rpcc|push|pull|push-ap] [--mix sc|dc|wc|hy]
//!     [--peers N] [--cache N] [--terrain METRES] [--range METRES]
//!     [--mobility waypoint[:MIN:MAX:PAUSE]|walk[:MIN:MAX:EPOCH]|manhattan[:BLOCK:SPEED]|stationary]
//!     [--sim MINUTES] [--warmup MINUTES]
//!     [--update-secs S] [--query-secs S] [--write-secs S]
//!     [--ttl HOPS] [--loss P] [--no-churn] [--oracle-routing]
//!     [--adaptive] [--relay-cap N] [--single-item] [--seed N]
//!     [--faults none|bursty|partition|crash|crash-heavy|hostile] [--hardened]
//!     [--recovery] [--consistency] [--sample-secs S] [--provenance]
//!     [--trace FILE.jsonl] [--json FILE.json] [--metrics-out FILE.json]
//!     [--profile]
//! ```
//!
//! Example: the paper's default RPCC point with lossy links and writes:
//!
//! ```text
//! cargo run --release -p mp2p-experiments --bin run -- \
//!     --strategy rpcc --mix hy --loss 0.05 --write-secs 180 --sim 60
//! ```
//!
//! `--trace` switches the flight recorder on: every message, relay
//! transition, query and churn event is appended to the given JSONL file
//! (with a versioned `{"schema":...}` header line), and an event-count
//! table is printed after the run. `--json` writes the machine-readable
//! run report; feed both to the `analyze` binary to reconstruct query
//! spans and cross-check them against the report's counters.
//!
//! `--faults` installs one of the chaos presets (scaled to the simulated
//! duration); `--hardened` switches on the protocol-hardening knobs
//! (retry backoff + jitter, relay orphan lease, fallback flood).
//!
//! `--mobility` selects the movement model (default: the paper's random
//! waypoint). `manhattan` moves nodes along a street grid — the model
//! shipped with the seed but reachable from a binary only since the
//! scenario-matrix PR. Colon parameters override the per-model defaults,
//! e.g. `--mobility manhattan:100:12` for 100 m blocks at 12 m/s.
//!
//! `--profile` switches the wall-clock profiler on: a per-bucket wall
//! time table is printed after the run and the `--json` report gains a
//! `perf` section. Profiling is strictly observational — the simulated
//! results are bit-identical either way.
//!
//! `--recovery` switches the self-healing recovery layer on: rejoining
//! nodes flood a version digest and drop stale copies before serving,
//! source updates are acknowledged and retransmitted from a bounded
//! queue, and an expiring relay lease is handed to a cached neighbour
//! instead of orphaning the item. The `--json` report gains the recovery
//! counters and a `--trace` journal is written at schema 3 so the
//! recovery records fit.
//!
//! `--consistency` switches the consistency observatory on: the
//! divergence sampler ticks every `--sample-secs` (default 30) simulated
//! seconds, every stale serve is blame-attributed, the `--json` report
//! gains a `consistency` section, and a `--trace` journal is written at
//! schema 2 so the `ConsistencySample`/`StaleServe` records fit. Without
//! the flag the journal and report bytes are identical to a build without
//! the observatory.
//!
//! `--provenance` switches the causal provenance engine on: every
//! transmitted frame gets a deterministic `(origin, seq)` identity, and
//! its birth, every re-transmission hop, and its terminal fate (delivered,
//! duplicate-suppressed, or dropped with the injecting fault's cause) are
//! journaled, along with a lineage record for every cached copy naming
//! the frame that carried it in. The `--trace` journal is written at
//! schema 4 so the frame records fit; feed it to
//! `analyze --explain --stale-serves` to walk every stale serve back to
//! its root cause. Off by default — without the flag the journal bytes
//! are identical to a build without the engine.
//!
//! `--metrics-out` dumps the final windowed metrics-registry snapshot
//! after the run: the given path gets the JSON form and a sibling
//! `<path>.prom` gets the Prometheus text exposition, both derived from
//! the same trace stream the analyzer replays.

use mp2p_experiments::{cli, render_table};
use mp2p_metrics::MessageClass;
use mp2p_rpcc::{
    ObservatoryConfig, ProvenanceConfig, RecoveryConfig, RoutingMode, WorkloadMode, World,
    WorldConfig,
};
use mp2p_sim::SimDuration;
use mp2p_trace::bridge::{RegistrySink, DEFAULT_WINDOW};
use mp2p_trace::{BlameCause, EventKind, JsonlSink, SummarySink, TeeSink, TraceSink};

/// Parsed command line: the world to run plus the output destinations.
struct RunArgs {
    cfg: WorldConfig,
    trace: Option<std::path::PathBuf>,
    json: Option<std::path::PathBuf>,
    metrics_out: Option<std::path::PathBuf>,
    profile: bool,
}

fn parse_args() -> Result<RunArgs, String> {
    let args = cli::Args::from_env();
    let mut cfg = WorldConfig::paper_default(42);
    cfg.sim_time = SimDuration::from_mins(45);
    cfg.warmup = SimDuration::from_mins(10);

    if let Some(v) = args.value_of("--strategy") {
        cfg.strategy = cli::parse_strategy(v)?;
    }
    if let Some(v) = args.value_of("--mix") {
        cfg.level_mix = cli::parse_mix(v)?;
    }
    if let Some(v) = args.usize_of("--peers")? {
        cfg.n_peers = v;
    }
    if let Some(v) = args.usize_of("--cache")? {
        cfg.c_num = v;
    }
    if let Some(side) = args.f64_of("--terrain")? {
        cfg.terrain = mp2p_mobility::Terrain::new(side, side);
    }
    if let Some(v) = args.f64_of("--range")? {
        cfg.range = v;
    }
    if let Some(v) = args.value_of("--mobility") {
        cfg.mobility = cli::parse_mobility(v)?;
    }
    if let Some(v) = args.f64_of("--sim")? {
        cfg.sim_time = SimDuration::from_secs_f64(v * 60.0);
    }
    if let Some(v) = args.f64_of("--warmup")? {
        cfg.warmup = SimDuration::from_secs_f64(v * 60.0);
    }
    if let Some(v) = args.f64_of("--update-secs")? {
        cfg.i_update = SimDuration::from_secs_f64(v);
    }
    if let Some(v) = args.f64_of("--query-secs")? {
        cfg.i_query = SimDuration::from_secs_f64(v);
    }
    if let Some(v) = args.f64_of("--write-secs")? {
        cfg.i_write = Some(SimDuration::from_secs_f64(v));
    }
    if let Some(v) = args.u64_of("--ttl")? {
        cfg.proto.invalidation_ttl = v as u8;
    }
    if let Some(v) = args.f64_of("--loss")? {
        cfg.link.loss_prob = v;
    }
    if let Some(v) = args.usize_of("--relay-cap")? {
        cfg.proto.max_relays_per_item = Some(v);
    }
    if let Some(v) = args.u64_of("--seed")? {
        cfg.seed = v;
    }
    if args.flag("--no-churn") {
        cfg.i_switch = None;
    }
    if args.flag("--oracle-routing") {
        cfg.routing = RoutingMode::Oracle;
    }
    if args.flag("--adaptive") {
        cfg.proto.adaptive = true;
    }
    if args.flag("--single-item") {
        cfg.workload = WorkloadMode::SingleItem;
    }
    if args.flag("--hardened") {
        cfg.proto = cfg.proto.hardened();
    }
    if args.flag("--recovery") {
        cfg.proto.recovery = RecoveryConfig::on();
    }
    if args.flag("--consistency") {
        let period = match args.f64_of("--sample-secs")? {
            Some(v) => SimDuration::from_secs_f64(v),
            None => SimDuration::from_secs(30),
        };
        cfg.observatory = ObservatoryConfig::full(period);
    } else if args.value_of("--sample-secs").is_some() {
        return Err("--sample-secs only makes sense together with --consistency".into());
    }
    if args.flag("--provenance") {
        cfg.provenance = ProvenanceConfig::full();
    }
    // Resolved after --sim so the preset windows scale to the actual run.
    if let Some(v) = args.value_of("--faults") {
        cfg.faults = cli::parse_faults(v, cfg.sim_time)?;
    }
    if args.flag("--help") || args.flag("-h") {
        return Err("see the module docs at the top of run.rs for the flag list".into());
    }
    // A small peer count with the default C_Num would fail validation;
    // clamp to the foreign-catalogue size and say so.
    if cfg.n_peers >= 2 && cfg.c_num >= cfg.n_peers {
        let clamped = cfg.n_peers - 1;
        eprintln!("note: clamping cache size to {clamped} (only {clamped} foreign items exist)");
        cfg.c_num = clamped;
    }
    let trace = args.value_of("--trace").map(std::path::PathBuf::from);
    let json = args.value_of("--json").map(std::path::PathBuf::from);
    let metrics_out = args.value_of("--metrics-out").map(std::path::PathBuf::from);
    let profile = args.flag("--profile");
    Ok(RunArgs {
        cfg,
        trace,
        json,
        metrics_out,
        profile,
    })
}

fn main() {
    let RunArgs {
        cfg,
        trace: trace_path,
        json: json_path,
        metrics_out,
        profile,
    } = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    println!(
        "Running {} / {} — {} peers, {:.0} m terrain side, {} simulated (seed {})",
        cfg.strategy,
        cfg.level_mix,
        cfg.n_peers,
        cfg.terrain.width(),
        cfg.sim_time,
        cfg.seed
    );
    let writes_on = cfg.i_write.is_some();
    let warmup = cfg.warmup;
    let observatory_on = cfg.observatory.enabled();
    let recovery_on = cfg.proto.recovery.enabled();
    let provenance_on = cfg.provenance.enabled();
    let mut world = World::new(cfg);
    if profile {
        world.enable_profiling();
    }
    // Every requested consumer rides one tee; the indices remember where
    // each sink landed so the post-run reporting can find it again.
    let mut sinks: Vec<Box<dyn TraceSink>> = Vec::new();
    let mut jsonl_idx = None;
    let mut summary_idx = None;
    let mut registry_idx = None;
    if let Some(path) = &trace_path {
        // The provenance engine's records are schema-4 kinds, the
        // recovery layer's schema-3 and the observatory's schema-2; an
        // older sink would silently skip them.
        let made = if provenance_on {
            JsonlSink::create_v4_with_warmup(path, warmup)
        } else if recovery_on {
            JsonlSink::create_v3_with_warmup(path, warmup)
        } else if observatory_on {
            JsonlSink::create_v2_with_warmup(path, warmup)
        } else {
            JsonlSink::create_with_warmup(path, warmup)
        };
        let jsonl = match made {
            Ok(sink) => sink,
            Err(err) => {
                eprintln!("cannot create trace file {}: {err}", path.display());
                std::process::exit(2);
            }
        };
        jsonl_idx = Some(sinks.len());
        sinks.push(Box::new(jsonl));
        summary_idx = Some(sinks.len());
        sinks.push(Box::new(SummarySink::new(warmup)));
    }
    if metrics_out.is_some() {
        registry_idx = Some(sinks.len());
        sinks.push(Box::new(RegistrySink::new(DEFAULT_WINDOW, warmup)));
    }
    if !sinks.is_empty() {
        world.set_tracer(Box::new(TeeSink::new(sinks)));
    }
    let (report, tracer) = world.run_traced();

    if let Some(path) = &json_path {
        if let Err(err) = std::fs::write(path, report.to_json()) {
            eprintln!("cannot write report {}: {err}", path.display());
            std::process::exit(2);
        }
        println!("Report JSON -> {}", path.display());
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |k: &str, v: String| rows.push(vec![k.to_string(), v]);
    row(
        "transmissions/min",
        format!("{:.1}", report.traffic_per_minute()),
    );
    row(
        "KB/min",
        format!(
            "{:.1}",
            report.traffic.bytes() as f64 / 1024.0 / (report.measured.as_secs_f64() / 60.0)
        ),
    );
    row("queries served", report.queries_served().to_string());
    row(
        "served by src/relay/cache",
        format!(
            "{}/{}/{}",
            report.served_by[0], report.served_by[1], report.served_by[2]
        ),
    );
    row(
        "cache-hit ratio",
        format!("{:.4}", report.cache_hit_ratio()),
    );
    row("failure rate", format!("{:.4}", report.failure_rate()));
    row(
        "mean latency",
        format!("{:.3}s", report.mean_latency_secs()),
    );
    row(
        "p95 latency",
        format!("{:.3}s", report.latency.percentile(0.95).as_secs_f64()),
    );
    row(
        "fresh fraction",
        format!("{:.4}", report.audit.fresh_fraction()),
    );
    row(
        "stale served",
        format!(
            "{} ({:.2}%)",
            report.audit.stale_served(),
            (1.0 - report.audit.fresh_fraction()) * 100.0
        ),
    );
    row(
        "max staleness",
        format!("{:.1}s", report.audit.max_staleness().as_secs_f64()),
    );
    row(
        "relay items (mean)",
        format!("{:.1}", report.relay_gauge.mean()),
    );
    row(
        "candidates (mean)",
        format!("{:.1}", report.candidate_gauge.mean()),
    );
    row(
        "energy used",
        format!("{:.1} J", report.energy_used_mj / 1_000.0),
    );
    if writes_on {
        row(
            "writes acked/issued",
            format!("{}/{}", report.writes_completed(), report.writes_issued),
        );
        row(
            "write latency",
            format!("{:.3}s", report.write_latency.mean_secs()),
        );
    }
    if let Some(plan) = report.fault_plan {
        row("fault plan", plan.to_string());
        row(
            "crashes/recoveries",
            format!("{}/{}", report.faults.crashes, report.faults.recoveries),
        );
        row(
            "partitions opened/healed",
            format!(
                "{}/{}",
                report.faults.partitions_started, report.faults.partitions_healed
            ),
        );
        row("burst drops", report.faults.burst_drops.to_string());
        row(
            "frames duplicated",
            report.faults.frames_duplicated.to_string(),
        );
        row(
            "relay leases expired",
            report.faults.lease_expiries.to_string(),
        );
        row("fallback floods", report.faults.fallback_floods.to_string());
    }
    if report.recovery_enabled {
        row("rejoin resyncs", report.faults.resyncs.to_string());
        row("retransmits", report.faults.retransmits.to_string());
        row("delivery acks", report.faults.delivery_acks.to_string());
        row("lease handovers", report.faults.handovers.to_string());
        row("retx queue peak", report.faults.retx_queue_peak.to_string());
    }
    print!("{}", render_table(&["metric", "value"], &rows));

    println!("\nTraffic by message class:");
    let mut rows = Vec::new();
    for class in MessageClass::ALL {
        let n = report.traffic.by_class(class);
        if n > 0 {
            rows.push(vec![class.label().to_string(), n.to_string()]);
        }
    }
    print!("{}", render_table(&["class", "transmissions"], &rows));

    if let Some(consistency) = &report.consistency {
        println!(
            "\nConsistency observatory: {} divergence samples, {} stale serves attributed, \
             {} Δ-violations",
            consistency.samples,
            consistency.blamed_total(),
            consistency.delta_violations,
        );
        let mut rows = Vec::new();
        for cause in BlameCause::ALL {
            let n = consistency.blame[cause.index()];
            if n > 0 {
                rows.push(vec![cause.label().to_string(), n.to_string()]);
            }
        }
        if !rows.is_empty() {
            print!("{}", render_table(&["blame cause", "stale serves"], &rows));
        }
    }

    if let Some(perf) = &report.perf {
        println!(
            "\nWall-clock profile: {} events in {:.2}s ({:.0} events/s, {:.0}x real time)",
            perf.events(),
            perf.wall_secs(),
            perf.events_per_sec(),
            perf.sim_time_ratio(),
        );
        println!(
            "Queue: {} pushes / {} pops, peak {} pending (capacity {}); {} frames sent",
            perf.queue.pushes,
            perf.queue.pops,
            perf.queue.peak_len,
            perf.queue.peak_capacity,
            perf.frames_sent,
        );
        let mut rows = Vec::new();
        for bucket in perf.top(10) {
            rows.push(vec![
                bucket.name.to_string(),
                bucket.count.to_string(),
                format!("{:.4}", bucket.secs()),
                format!("{:.1}%", perf.share(bucket) * 100.0),
            ]);
        }
        print!(
            "{}",
            render_table(&["bucket", "count", "wall s", "share"], &rows)
        );
    }

    let tee = (trace_path.is_some() || metrics_out.is_some()).then(|| {
        tracer
            .as_any()
            .downcast_ref::<TeeSink>()
            .expect("the tee sink installed above")
    });
    if let (Some(path), Some(tee)) = (&trace_path, tee) {
        let jsonl = tee.sinks()[jsonl_idx.expect("trace requested")]
            .as_any()
            .downcast_ref::<JsonlSink>()
            .expect("jsonl sink at its recorded tee index");
        let summary = tee.sinks()[summary_idx.expect("trace requested")]
            .as_any()
            .downcast_ref::<SummarySink>()
            .expect("summary sink at its recorded tee index");
        if let Some(err) = jsonl.io_error() {
            eprintln!("warning: trace file truncated by I/O error: {err}");
        }
        println!("\nTrace events by kind:");
        let mut rows = Vec::new();
        for kind in EventKind::ALL {
            let n = summary.count_of(kind);
            if n > 0 {
                rows.push(vec![kind.label().to_string(), n.to_string()]);
            }
        }
        print!("{}", render_table(&["event", "count"], &rows));
        println!(
            "\nFlight recorder: {} events -> {}",
            jsonl.records(),
            path.display()
        );
    }
    if let (Some(path), Some(tee)) = (&metrics_out, tee) {
        let registry = tee.sinks()[registry_idx.expect("metrics requested")]
            .as_any()
            .downcast_ref::<RegistrySink>()
            .expect("registry sink at its recorded tee index")
            .registry();
        let prom_path = std::path::PathBuf::from(format!("{}.prom", path.display()));
        let written = std::fs::write(path, registry.to_json())
            .and_then(|()| std::fs::write(&prom_path, registry.render_prometheus()));
        if let Err(err) = written {
            eprintln!("cannot write metrics snapshot {}: {err}", path.display());
            std::process::exit(2);
        }
        println!(
            "Metrics snapshot -> {} (JSON) and {} (Prometheus text)",
            path.display(),
            prom_path.display()
        );
    }
}
