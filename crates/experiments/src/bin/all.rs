//! Regenerates every table and figure of the paper in one pass:
//! `all [--full]`. Results land under `results/` as CSV; the tables
//! print to stdout.

use std::path::PathBuf;

use mp2p_experiments::{
    fig7a, fig7b, fig7c, fig9, render_series_table, render_table, table1_rows, write_csv,
    FigureData, RunOptions,
};

fn emit_both(fig: FigureData) {
    println!("\n=== {} — {}", fig.id, fig.caption);
    println!("Traffic view (Fig 7 panel):");
    print!(
        "{}",
        render_series_table(fig.x_label, &fig.series, |p| p.traffic_per_min, "")
    );
    println!("Latency view (Fig 8 panel, seconds):");
    print!(
        "{}",
        render_series_table(fig.x_label, &fig.series, |p| p.latency_s, "s")
    );
    let file = PathBuf::from("results").join(format!(
        "{}.csv",
        fig.id.to_lowercase().replace([' ', '(', ')'], "")
    ));
    match write_csv(&file, fig.id, &fig.series) {
        Ok(()) => println!("wrote {}", file.display()),
        Err(e) => eprintln!("could not write {}: {e}", file.display()),
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let opts = if full {
        RunOptions::full()
    } else {
        RunOptions::quick()
    };
    println!("=== Table 1: simulation parameters");
    print!(
        "{}",
        render_table(
            &["Parameter", "Description", "Default Value"],
            &table1_rows()
        )
    );

    // Figs 7 and 8 share their sweeps: each sweep runs once, both views
    // print (traffic = Fig 7, latency = Fig 8).
    emit_both(fig7a(opts));
    emit_both(fig7b(opts));
    emit_both(fig7c(opts));

    let fig = fig9(opts);
    println!("\n=== {} — {}", fig.id, fig.caption);
    println!("Fig 9(a) traffic:");
    print!(
        "{}",
        render_series_table(fig.x_label, &fig.series, |p| p.traffic_per_min, "")
    );
    println!("Fig 9(b) latency (seconds):");
    print!(
        "{}",
        render_series_table(fig.x_label, &fig.series, |p| p.latency_s, "s")
    );
    let file = PathBuf::from("results").join("fig9.csv");
    match write_csv(&file, fig.id, &fig.series) {
        Ok(()) => println!("wrote {}", file.display()),
        Err(e) => eprintln!("could not write {}: {e}", file.display()),
    }
}
