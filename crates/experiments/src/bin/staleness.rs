//! Consistency-quality report (an artefact the paper does not plot but
//! its Section 3 definitions imply): for each strategy and each
//! consistency level, how stale were the answers actually served?
//! `staleness [--full]`.

use mp2p_experiments::{render_table, RunOptions};
use mp2p_rpcc::{ConsistencyLevel, LevelMix, RunReport, Strategy, World, WorldConfig};

fn run(strategy: Strategy, opts: RunOptions, seed: u64) -> RunReport {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.sim_time = opts.sim_time;
    cfg.warmup = opts.warmup;
    cfg.strategy = strategy;
    cfg.level_mix = LevelMix::hybrid();
    World::new(cfg).run()
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let opts = if full {
        RunOptions::full()
    } else {
        RunOptions::quick()
    };
    println!(
        "Consistency quality under the hybrid (1/3 weak, 1/3 Δ, 1/3 strong) workload,\n\
         Table 1 defaults, {} simulated.\n",
        opts.sim_time
    );
    let headers = [
        "strategy / level",
        "served",
        "stale %",
        "mean stale (s)",
        "max stale (s)",
        "max version lag",
        "mean latency (s)",
    ];
    let mut rows = Vec::new();
    for strategy in [Strategy::Pull, Strategy::Push, Strategy::Rpcc] {
        let report = run(strategy, opts, 42);
        for level in ConsistencyLevel::ALL {
            let audit = &report.audit_by_level[level.index()];
            let latency = &report.latency_by_level[level.index()];
            rows.push(vec![
                format!("{} / {}", strategy.label(), level.label()),
                audit.served().to_string(),
                format!("{:.2}", (1.0 - audit.fresh_fraction()) * 100.0),
                format!("{:.1}", audit.mean_staleness_of_stale().as_secs_f64()),
                format!("{:.1}", audit.max_staleness().as_secs_f64()),
                audit.max_version_lag().to_string(),
                format!("{:.3}", latency.mean_secs()),
            ]);
        }
    }
    print!("{}", render_table(&headers, &rows));
    println!(
        "\nReading guide: the baselines ignore the requested level (pull validates every\n\
         query, push holds every query for the next report), so their three rows differ\n\
         only by sampling. RPCC differentiates: weak rows never wait and go stalest,\n\
         Δ rows ride the TTP lease (staleness ≤ TTP + report cycle), strong rows ride\n\
         relay freshness (staleness ≤ one report cycle)."
    );
}
