//! Offline trace analyzer: span reconstruction and report cross-checks.
//!
//! ```text
//! analyze --trace FILE.jsonl [--report FILE.json] [--top N]
//!         [--consistency] [--baseline FILE.json] [--tolerance X]
//!         [--explain QUERY | --explain --stale-serves] [--health]
//! ```
//!
//! Reads a JSONL journal written by `run --trace`, reconstructs the
//! causal span of every query (issue → phases → answer), and prints a
//! per-run report: latency percentiles by consistency level and answer
//! provenance, the span-phase time breakdown, a post-warm-up traffic
//! timeline, and the top-N slowest spans.
//!
//! With `--report` (the JSON written by `run --json`), the span-derived
//! totals are cross-checked against the simulation's own counters; any
//! divergence is printed and the process exits non-zero, making the
//! check usable as a CI gate. Exit codes: 0 clean, 1 cross-check
//! mismatch or truncated journal, 2 usage or I/O error.
//!
//! `--consistency` renders the observatory's view of the journal — the
//! divergence timeline and the stale-serve blame partition — and, when
//! `--report` is also given, cross-checks the journal-derived blame
//! counts, sample count and Δ-violations against the report's
//! `consistency` section (exit 1 on any mismatch).
//!
//! `--baseline` gates the report's `fresh_fraction` against a committed
//! baseline report: the run fails (exit 1) when its fresh fraction drops
//! more than `--tolerance` (default 0.02) below the baseline's. This is
//! the consistency half of the CI regression gate.
//!
//! `--explain` is the causal root-cause explainer: it walks the
//! provenance graph (frame births, hops, fates, copy lineage — journal
//! schema 4, written by `run --provenance`) and prints one causal chain
//! per stale serve, from the missed source update through the dropped or
//! delayed frame to the recovery action that repaired the copy.
//! `--explain QUERY` explains one query; `--explain --stale-serves`
//! explains every stale serve in the journal. With `--report`, the
//! explainer's terminal causes are cross-checked against the report's
//! blame partition — any divergence exits 1.
//!
//! `--health` prints the per-node / per-link health scoreboard derived
//! from the same graph: frame drop rates, relay load, and each node's
//! staleness contribution.

use mp2p_experiments::{
    analyze_file, crosscheck, crosscheck_consistency, crosscheck_explain, explain_stale_serves,
    render_analysis, render_consistency, render_explain, render_health, ConsistencyReportTotals,
    ReportTotals,
};

struct Args {
    trace: std::path::PathBuf,
    report: Option<std::path::PathBuf>,
    top: usize,
    consistency: bool,
    baseline: Option<std::path::PathBuf>,
    tolerance: f64,
    explain: bool,
    explain_query: Option<u64>,
    stale_serves: bool,
    health: bool,
}

fn parse_args() -> Result<Args, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Err(
            "usage: analyze --trace FILE.jsonl [--report FILE.json] [--top N] \
             [--consistency] [--baseline FILE.json] [--tolerance X] \
             [--explain QUERY | --explain --stale-serves] [--health]"
                .into(),
        );
    }
    let value_of = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let trace = value_of("--trace")
        .map(std::path::PathBuf::from)
        .ok_or("missing --trace FILE.jsonl (see --help)")?;
    let report = value_of("--report").map(std::path::PathBuf::from);
    let top = match value_of("--top") {
        Some(text) => text
            .parse()
            .map_err(|_| format!("--top expects a number, got {text:?}"))?,
        None => 10,
    };
    let consistency = args.iter().any(|a| a == "--consistency");
    let baseline = value_of("--baseline").map(std::path::PathBuf::from);
    let tolerance = match value_of("--tolerance") {
        Some(text) => text
            .parse()
            .map_err(|_| format!("--tolerance expects a number, got {text:?}"))?,
        None => 0.02,
    };
    if baseline.is_some() && report.is_none() {
        return Err("--baseline needs --report (the run to gate)".into());
    }
    let explain = args.iter().any(|a| a == "--explain");
    let stale_serves = args.iter().any(|a| a == "--stale-serves");
    // `--explain 17` selects one query; `--explain --stale-serves` (or a
    // bare `--explain`) walks every incident.
    let explain_query = match value_of("--explain") {
        Some(text) if !text.starts_with("--") => Some(
            text.parse()
                .map_err(|_| format!("--explain expects a query id, got {text:?}"))?,
        ),
        _ => None,
    };
    if stale_serves && !explain {
        return Err("--stale-serves is a mode of --explain (see --help)".into());
    }
    let health = args.iter().any(|a| a == "--health");
    Ok(Args {
        trace,
        report,
        top,
        consistency,
        baseline,
        tolerance,
        explain,
        explain_query,
        stale_serves,
        health,
    })
}

/// Reads and parses one report JSON file, exiting on I/O errors.
fn read_report(path: &std::path::Path) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("cannot read report {}: {err}", path.display());
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let analysis = match analyze_file(&args.trace) {
        Ok(analysis) => analysis,
        Err(err) => {
            eprintln!("cannot analyze {}: {err}", args.trace.display());
            std::process::exit(2);
        }
    };
    print!("{}", render_analysis(&analysis, args.top));
    if args.consistency {
        print!("{}", render_consistency(&analysis.consistency));
    }
    let incidents = args.explain.then(|| explain_stale_serves(&analysis));
    if let Some(incidents) = &incidents {
        print!("{}", render_explain(incidents, args.explain_query));
    }
    if args.health {
        print!("{}", render_health(&analysis));
    }

    let mut failed = false;
    if analysis.orphan_tagged > 0 {
        failed = true; // already reported inside render_analysis
    }
    if let Some(path) = &args.report {
        let text = read_report(path);
        let report = match ReportTotals::from_report_json(&text) {
            Some(report) => report,
            None => {
                eprintln!(
                    "report {} lacks the expected counters (written by run --json?)",
                    path.display()
                );
                std::process::exit(2);
            }
        };
        let mismatches = crosscheck(&analysis.measured_totals(), &report);
        if mismatches.is_empty() {
            println!("\nCross-check against {}: exact agreement", path.display());
        } else {
            failed = true;
            eprintln!("\nCross-check against {} FAILED:", path.display());
            for line in &mismatches {
                eprintln!("  {line}");
            }
        }

        if args.consistency {
            match ConsistencyReportTotals::from_report_json(&text) {
                Some(consistency) => {
                    let mismatches = crosscheck_consistency(&analysis.consistency, &consistency);
                    if mismatches.is_empty() {
                        println!(
                            "Consistency cross-check against {}: exact agreement \
                             ({} stale serves attributed)",
                            path.display(),
                            consistency.stale_served,
                        );
                    } else {
                        failed = true;
                        eprintln!(
                            "\nConsistency cross-check against {} FAILED:",
                            path.display()
                        );
                        for line in &mismatches {
                            eprintln!("  {line}");
                        }
                    }
                }
                None => {
                    eprintln!(
                        "report {} has no consistency section (run with --consistency?)",
                        path.display()
                    );
                    std::process::exit(2);
                }
            }
        }

        if let Some(incidents) = incidents.as_ref().filter(|_| args.stale_serves) {
            match ConsistencyReportTotals::from_report_json(&text) {
                Some(consistency) => {
                    let mismatches = crosscheck_explain(incidents, &consistency);
                    if mismatches.is_empty() {
                        println!(
                            "Explain cross-check against {}: exact agreement \
                             ({} causal chains, terminal causes match the blame partition)",
                            path.display(),
                            incidents.len(),
                        );
                    } else {
                        failed = true;
                        eprintln!("\nExplain cross-check against {} FAILED:", path.display());
                        for line in &mismatches {
                            eprintln!("  {line}");
                        }
                    }
                }
                None => {
                    eprintln!(
                        "report {} has no consistency section to cross-check the \
                         explainer against (run with --consistency?)",
                        path.display()
                    );
                    std::process::exit(2);
                }
            }
        }

        if let Some(baseline_path) = &args.baseline {
            let baseline_text = read_report(baseline_path);
            let fresh_of = |text: &str, path: &std::path::Path| -> f64 {
                match mp2p_trace::json::parse(text)
                    .and_then(|v| v.get("fresh_fraction").and_then(|f| f.as_f64()))
                {
                    Some(fresh) => fresh,
                    None => {
                        eprintln!("report {} lacks fresh_fraction", path.display());
                        std::process::exit(2);
                    }
                }
            };
            let run_fresh = fresh_of(&text, path);
            let baseline_fresh = fresh_of(&baseline_text, baseline_path);
            let floor = baseline_fresh - args.tolerance;
            if run_fresh < floor {
                failed = true;
                eprintln!(
                    "\nConsistency regression: fresh_fraction {run_fresh:.4} fell below \
                     the baseline floor {floor:.4} (baseline {baseline_fresh:.4} from {}, \
                     tolerance {:.3})",
                    baseline_path.display(),
                    args.tolerance,
                );
            } else {
                println!(
                    "Fresh-fraction gate: {run_fresh:.4} >= floor {floor:.4} \
                     (baseline {baseline_fresh:.4}, tolerance {:.3})",
                    args.tolerance,
                );
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
