//! Offline trace analyzer: span reconstruction and report cross-checks.
//!
//! ```text
//! analyze --trace FILE.jsonl [--report FILE.json] [--top N]
//! ```
//!
//! Reads a JSONL journal written by `run --trace`, reconstructs the
//! causal span of every query (issue → phases → answer), and prints a
//! per-run report: latency percentiles by consistency level and answer
//! provenance, the span-phase time breakdown, a post-warm-up traffic
//! timeline, and the top-N slowest spans.
//!
//! With `--report` (the JSON written by `run --json`), the span-derived
//! totals are cross-checked against the simulation's own counters; any
//! divergence is printed and the process exits non-zero, making the
//! check usable as a CI gate. Exit codes: 0 clean, 1 cross-check
//! mismatch or truncated journal, 2 usage or I/O error.

use mp2p_experiments::{analyze_file, crosscheck, render_analysis, ReportTotals};

struct Args {
    trace: std::path::PathBuf,
    report: Option<std::path::PathBuf>,
    top: usize,
}

fn parse_args() -> Result<Args, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Err("usage: analyze --trace FILE.jsonl [--report FILE.json] [--top N]".into());
    }
    let value_of = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let trace = value_of("--trace")
        .map(std::path::PathBuf::from)
        .ok_or("missing --trace FILE.jsonl (see --help)")?;
    let report = value_of("--report").map(std::path::PathBuf::from);
    let top = match value_of("--top") {
        Some(text) => text
            .parse()
            .map_err(|_| format!("--top expects a number, got {text:?}"))?,
        None => 10,
    };
    Ok(Args { trace, report, top })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let analysis = match analyze_file(&args.trace) {
        Ok(analysis) => analysis,
        Err(err) => {
            eprintln!("cannot analyze {}: {err}", args.trace.display());
            std::process::exit(2);
        }
    };
    print!("{}", render_analysis(&analysis, args.top));

    let mut failed = false;
    if analysis.orphan_tagged > 0 {
        failed = true; // already reported inside render_analysis
    }
    if let Some(path) = &args.report {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("cannot read report {}: {err}", path.display());
                std::process::exit(2);
            }
        };
        let report = match ReportTotals::from_report_json(&text) {
            Some(report) => report,
            None => {
                eprintln!(
                    "report {} lacks the expected counters (written by run --json?)",
                    path.display()
                );
                std::process::exit(2);
            }
        };
        let mismatches = crosscheck(&analysis.measured_totals(), &report);
        if mismatches.is_empty() {
            println!("\nCross-check against {}: exact agreement", path.display());
        } else {
            failed = true;
            eprintln!("\nCross-check against {} FAILED:", path.display());
            for line in &mismatches {
                eprintln!("  {line}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
