//! Engine performance observatory: profiled benchmark matrix and
//! regression gate.
//!
//! ```text
//! perf [--out DIR] [--smoke | --large] [--sim MINUTES] [--warmup MINUTES] [--seed N]
//! perf --baseline BENCH_x.json [--tolerance T] [--out DIR]
//! ```
//!
//! Matrix mode (the default) runs every strategy at 25 and 50 peers with
//! wall-clock profiling on and writes one schema-versioned
//! `BENCH_<strategy>_<peers>.json` snapshot per point into `--out`
//! (default: the current directory). `--smoke` shrinks the matrix to the
//! single `rpcc_50` point with a two-minute run — the CI smoke step.
//! `--large` instead runs RPCC at 50/500/2000/5000 peers on
//! density-scaled terrain (see `perf::bench_terrain`) with a one-minute
//! run — the scalability matrix that exercises the spatial-hash topology
//! substrate well past the paper's 50-node regime.
//!
//! Baseline mode reproduces the exact scenario recorded in the given
//! snapshot (strategy, peers, duration, seed), measures it afresh, and
//! exits non-zero if throughput fell more than `--tolerance` (default
//! 0.15) below the stored events/sec. The fresh measurement is also
//! written next to the baseline's name into `--out` so a passing run can
//! be promoted to the new baseline.
//!
//! Profiling is strictly observational: the same seeds produce
//! bit-identical protocol results with or without it, so snapshots never
//! perturb the science. Wall-clock numbers are only comparable on the
//! machine that produced the baseline.

use std::path::{Path, PathBuf};

use mp2p_experiments::perf::{compare, parse_strategy, run_bench_point, BenchSnapshot};
use mp2p_experiments::render_table;
use mp2p_rpcc::Strategy;
use mp2p_sim::SimDuration;

struct Args {
    out_dir: PathBuf,
    smoke: bool,
    large: bool,
    sim: SimDuration,
    warmup: SimDuration,
    seed: u64,
    baseline: Option<PathBuf>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        return Err("see the module docs at the top of perf.rs for the flag list".into());
    }
    let value_of = |flag: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let parse = |flag: &str, text: &String| -> Result<f64, String> {
        text.parse()
            .map_err(|_| format!("{flag} expects a number, got {text:?}"))
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let large = args.iter().any(|a| a == "--large");
    if smoke && large {
        return Err("--smoke and --large are mutually exclusive".into());
    }
    let mut parsed = Args {
        out_dir: value_of("--out").map(PathBuf::from).unwrap_or_default(),
        smoke,
        large,
        // Long enough for tens of thousands of events per point, short
        // enough to stay interactive; --smoke halves it again and
        // --large trims further because its points are 10–100× bigger.
        sim: SimDuration::from_mins(if smoke {
            2
        } else if large {
            1
        } else {
            10
        }),
        warmup: SimDuration::from_secs(if smoke {
            60
        } else if large {
            15
        } else {
            120
        }),
        seed: 42,
        baseline: value_of("--baseline").map(PathBuf::from),
        tolerance: 0.15,
    };
    if let Some(v) = value_of("--sim") {
        parsed.sim = SimDuration::from_secs_f64(parse("--sim", v)? * 60.0);
    }
    if let Some(v) = value_of("--warmup") {
        parsed.warmup = SimDuration::from_secs_f64(parse("--warmup", v)? * 60.0);
    }
    if let Some(v) = value_of("--seed") {
        parsed.seed = parse("--seed", v)? as u64;
    }
    if let Some(v) = value_of("--tolerance") {
        parsed.tolerance = parse("--tolerance", v)?;
    }
    Ok(parsed)
}

/// Writes `BENCH_<name>.json`, creating the directory if needed.
fn write_snapshot(dir: &Path, snap: &BenchSnapshot) -> std::io::Result<PathBuf> {
    if !dir.as_os_str().is_empty() {
        std::fs::create_dir_all(dir)?;
    }
    let path = dir.join(format!("BENCH_{}.json", snap.name));
    std::fs::write(&path, snap.to_json())?;
    Ok(path)
}

/// One summary table row per snapshot: throughput, ratio, hottest buckets.
fn table_row(snap: &BenchSnapshot) -> Vec<String> {
    let top: Vec<String> = snap
        .buckets
        .iter()
        .take(3)
        .map(|b| format!("{} {:.0}%", b.name, b.share * 100.0))
        .collect();
    vec![
        snap.name.clone(),
        format!("{:.2}", snap.wall_secs),
        snap.events.to_string(),
        format!("{:.0}", snap.events_per_sec),
        format!("{:.0}x", snap.sim_time_ratio),
        snap.queue.peak_len.to_string(),
        top.join(", "),
    ]
}

const TABLE_HEADER: [&str; 7] = [
    "point",
    "wall s",
    "events",
    "events/s",
    "sim/real",
    "queue peak",
    "hottest buckets",
];

fn run_matrix(args: &Args) -> Result<(), String> {
    let strategies: &[Strategy] = if args.smoke || args.large {
        &[Strategy::Rpcc]
    } else {
        &[
            Strategy::Rpcc,
            Strategy::Push,
            Strategy::Pull,
            Strategy::PushAdaptivePull,
        ]
    };
    let sizes: &[usize] = if args.smoke {
        &[50]
    } else if args.large {
        &[50, 500, 2_000, 5_000]
    } else {
        &[25, 50]
    };
    let mut rows = Vec::new();
    for &strategy in strategies {
        for &peers in sizes {
            let snap = run_bench_point(strategy, peers, args.sim, args.warmup, args.seed);
            let path = write_snapshot(&args.out_dir, &snap)
                .map_err(|e| format!("cannot write snapshot: {e}"))?;
            println!("{} -> {}", snap.name, path.display());
            rows.push(table_row(&snap));
        }
    }
    print!("{}", render_table(&TABLE_HEADER, &rows));
    Ok(())
}

fn run_baseline(args: &Args, path: &Path) -> Result<bool, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let baseline =
        BenchSnapshot::from_json(&text).map_err(|e| format!("baseline {}: {e}", path.display()))?;
    let strategy = parse_strategy(&baseline.strategy)
        .ok_or_else(|| format!("baseline has unknown strategy {:?}", baseline.strategy))?;
    println!(
        "Replaying {} ({} peers, {} sim, seed {}) against {}",
        baseline.name,
        baseline.peers,
        SimDuration::from_millis(baseline.sim_ms),
        baseline.seed,
        path.display(),
    );
    let measured = run_bench_point(
        strategy,
        baseline.peers as usize,
        SimDuration::from_millis(baseline.sim_ms),
        SimDuration::from_millis(baseline.warmup_ms),
        baseline.seed,
    );
    let out = write_snapshot(&args.out_dir, &measured)
        .map_err(|e| format!("cannot write snapshot: {e}"))?;
    println!("fresh measurement -> {}", out.display());
    print!("{}", render_table(&TABLE_HEADER, &[table_row(&measured)]));
    let verdict = compare(&baseline, &measured, args.tolerance)?;
    println!(
        "baseline {:.0} ev/s, measured {:.0} ev/s ({:.1}% of baseline, floor {:.0})",
        verdict.baseline_eps,
        verdict.measured_eps,
        verdict.ratio() * 100.0,
        verdict.floor,
    );
    if verdict.regressed() {
        println!(
            "REGRESSION: throughput fell more than {:.0}% below baseline",
            args.tolerance * 100.0
        );
    } else {
        println!("PASS: within tolerance");
    }
    Ok(!verdict.regressed())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let outcome = match &args.baseline {
        Some(path) => run_baseline(&args, &path.clone()),
        None => run_matrix(&args).map(|()| true),
    };
    match outcome {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
