//! Side-by-side strategy comparison at the Table 1 default point:
//! `compare [--full] [--seed N] [--range M] [--mobility MODEL[:P...]]
//! [--faults PRESET] [--hardened] [--recovery] [--consistency]
//! [--provenance] [--trace PREFIX] [--json FILE]`.
//!
//! Prints traffic (total and per message class), latency, staleness,
//! failure rate, relay population and energy for Pull, Push and the four
//! RPCC variants. With `--trace PREFIX`, each strategy's run additionally
//! writes a flight-recorder journal to `PREFIX-<name>.jsonl` (strategy
//! names are sanitised for the filesystem: `RPCC(SC)` → `RPCC-SC`).
//! `--json FILE` writes every run's machine-readable report — the same
//! `RunReport::to_json` objects the `run` binary emits — as
//! `{"seed":N,"reports":[...]}`.
//!
//! `--consistency` switches the observatory on for every strategy run:
//! the table gains a consistency scorecard (stale serves attributed,
//! Δ-consistency violations and the dominant blame cause per strategy),
//! each report in `--json` carries its `consistency` section, and
//! `--trace` journals are written at schema 2.
//!
//! `--recovery` switches the self-healing recovery layer on for every
//! strategy run (rejoin resync, acknowledged updates with bounded
//! retransmit, relay-lease handover); the table gains the recovery
//! counters and `--trace` journals are written at schema 3. Run the same
//! comparison with and without the flag to measure what recovery buys
//! under a fault preset.
//!
//! `--provenance` switches the causal provenance engine on for every
//! strategy run: frame births, hops, fates and copy lineage are
//! journaled, and `--trace` journals are written at schema 4 so
//! `analyze --explain` can walk them.

use mp2p_experiments::{cli, render_table, RunOptions};
use mp2p_metrics::MessageClass;
use mp2p_rpcc::{
    MobilityKind, ObservatoryConfig, ProvenanceConfig, RecoveryConfig, RunReport, World,
    WorldConfig,
};
use mp2p_sim::SimDuration;
use mp2p_trace::{BlameCause, JsonlSink};

/// `RPCC(SC)` → `RPCC-SC`: keep trace filenames shell-friendly.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            c if c.is_ascii_alphanumeric() || c == '-' || c == '_' => out.push(c),
            '+' => out.push_str("plus"),
            _ => {
                if !out.ends_with('-') {
                    out.push('-');
                }
            }
        }
    }
    out.trim_end_matches('-').to_string()
}

fn main() {
    let fail = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let args = cli::Args::from_env();
    let full = args.flag("--full");
    let seed = args
        .u64_of("--seed")
        .unwrap_or_else(|e| fail(e))
        .unwrap_or(42);
    let range = args.f64_of("--range").unwrap_or_else(|e| fail(e));
    let mobility: Option<MobilityKind> = args
        .value_of("--mobility")
        .map(|v| cli::parse_mobility(v).unwrap_or_else(|e| fail(e)));
    let single = args.flag("--single");
    let ttl = args
        .u64_of("--ttl")
        .unwrap_or_else(|e| fail(e))
        .map(|t| t as u8);
    let trace_prefix: Option<String> = args.value_of("--trace").map(str::to_owned);
    let fault_preset: Option<String> = args.value_of("--faults").map(str::to_owned);
    let json_path: Option<String> = args.value_of("--json").map(str::to_owned);
    let hardened = args.flag("--hardened");
    let recovery = args.flag("--recovery");
    let consistency = args.flag("--consistency");
    let provenance = args.flag("--provenance");
    let opts = if full {
        RunOptions::full()
    } else {
        RunOptions::quick()
    };

    let specs = mp2p_experiments::extended_strategies();
    let reports: Vec<RunReport> = specs
        .iter()
        .map(|spec| {
            let mut cfg = WorldConfig::paper_default(seed);
            cfg.sim_time = opts.sim_time;
            cfg.warmup = opts.warmup;
            cfg.strategy = spec.strategy;
            cfg.level_mix = spec.mix;
            if let Some(r) = range {
                cfg.range = r;
            }
            if let Some(kind) = mobility {
                cfg.mobility = kind;
            }
            if single {
                cfg.workload = mp2p_rpcc::WorkloadMode::SingleItem;
            }
            if let Some(t) = ttl {
                cfg.proto.invalidation_ttl = t;
            }
            if hardened {
                cfg.proto = cfg.proto.hardened();
            }
            if recovery {
                cfg.proto.recovery = RecoveryConfig::on();
            }
            if consistency {
                cfg.observatory = ObservatoryConfig::full(SimDuration::from_secs(30));
            }
            if provenance {
                cfg.provenance = ProvenanceConfig::full();
            }
            if let Some(preset) = &fault_preset {
                cfg.faults = cli::parse_faults(preset, cfg.sim_time).unwrap_or_else(|e| fail(e));
            }
            let mut world = World::new(cfg);
            if let Some(prefix) = &trace_prefix {
                let path = format!("{prefix}-{}.jsonl", sanitize(spec.name));
                // Provenance records are schema-4 kinds, recovery records
                // schema-3 and observatory records schema-2; an older
                // journal would silently skip them.
                let made = if provenance {
                    JsonlSink::create_v4_with_warmup(std::path::Path::new(&path), opts.warmup)
                } else if recovery {
                    JsonlSink::create_v3_with_warmup(std::path::Path::new(&path), opts.warmup)
                } else if consistency {
                    JsonlSink::create_v2_with_warmup(std::path::Path::new(&path), opts.warmup)
                } else {
                    JsonlSink::create(std::path::Path::new(&path))
                };
                match made {
                    Ok(sink) => {
                        world.set_tracer(Box::new(sink));
                        eprintln!("tracing {} -> {path}", spec.name);
                    }
                    Err(err) => {
                        eprintln!("cannot create trace file {path}: {err}");
                        std::process::exit(2);
                    }
                }
            }
            world.run_traced().0
        })
        .collect();

    if let Some(path) = &json_path {
        let body: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        let doc = format!("{{\"seed\":{seed},\"reports\":[{}]}}\n", body.join(","));
        if let Err(err) = std::fs::write(path, doc) {
            eprintln!("cannot write report JSON {path}: {err}");
            std::process::exit(2);
        }
        eprintln!("Report JSON -> {path}");
    }

    let mut headers = vec!["metric"];
    headers.extend(specs.iter().map(|s| s.name));
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row = |name: &str, f: &dyn Fn(&RunReport) -> String| {
        let mut r = vec![name.to_string()];
        r.extend(reports.iter().map(f));
        rows.push(r);
    };
    row("tx/min", &|r| format!("{:.1}", r.traffic_per_minute()));
    row("KB/min", &|r| {
        format!(
            "{:.1}",
            r.traffic.bytes() as f64 / 1024.0 / (r.measured.as_secs_f64() / 60.0)
        )
    });
    row("mean latency (s)", &|r| {
        format!("{:.3}", r.mean_latency_secs())
    });
    row("p95 latency (s)", &|r| {
        format!("{:.3}", r.latency.percentile(0.95).as_secs_f64())
    });
    row("queries served", &|r| r.queries_served().to_string());
    row("failure rate", &|r| format!("{:.4}", r.failure_rate()));
    row("fresh fraction", &|r| {
        format!("{:.4}", r.audit.fresh_fraction())
    });
    row("stale served", &|r| r.audit.stale_served().to_string());
    row("max staleness (s)", &|r| {
        format!("{:.1}", r.audit.max_staleness().as_secs_f64())
    });
    if consistency {
        // The consistency scorecard: what the observatory attributed.
        row("stale attributed", &|r| {
            r.consistency
                .map_or_else(|| "-".into(), |c| c.blamed_total().to_string())
        });
        row("Δ violations", &|r| {
            r.consistency
                .map_or_else(|| "-".into(), |c| c.delta_violations.to_string())
        });
        row("dominant blame", &|r| {
            r.consistency.map_or_else(
                || "-".into(),
                |c| {
                    BlameCause::ALL
                        .into_iter()
                        .max_by_key(|cause| c.blame[cause.index()])
                        .filter(|cause| c.blame[cause.index()] > 0)
                        .map_or_else(|| "none".into(), |cause| cause.label().to_string())
                },
            )
        });
    }
    row("relay items (mean)", &|r| {
        format!("{:.1}", r.relay_gauge.mean())
    });
    row("candidates (mean)", &|r| {
        format!("{:.1}", r.candidate_gauge.mean())
    });
    row("energy used (J)", &|r| {
        format!("{:.0}", r.energy_used_mj / 1_000.0)
    });
    if reports.iter().any(|r| r.fault_plan.is_some()) {
        row("burst drops", &|r| r.faults.burst_drops.to_string());
        row("frames duplicated", &|r| {
            r.faults.frames_duplicated.to_string()
        });
        row("crashes", &|r| r.faults.crashes.to_string());
        row("relay leases expired", &|r| {
            r.faults.lease_expiries.to_string()
        });
        row("fallback floods", &|r| r.faults.fallback_floods.to_string());
    }
    if reports.iter().any(|r| r.recovery_enabled) {
        row("rejoin resyncs", &|r| r.faults.resyncs.to_string());
        row("retransmits", &|r| r.faults.retransmits.to_string());
        row("delivery acks", &|r| r.faults.delivery_acks.to_string());
        row("lease handovers", &|r| r.faults.handovers.to_string());
        row("retx queue peak", &|r| r.faults.retx_queue_peak.to_string());
    }
    for class in MessageClass::ALL {
        let any = reports.iter().any(|r| r.traffic.by_class(class) > 0);
        if any {
            let mut r = vec![format!("tx {}", class.label())];
            r.extend(
                reports
                    .iter()
                    .map(|rep| rep.traffic.by_class(class).to_string()),
            );
            rows.push(r);
        }
    }

    println!(
        "Strategy comparison at Table 1 defaults ({} sim, warmup {}, seed {seed})",
        opts.sim_time, opts.warmup
    );
    print!("{}", render_table(&headers, &rows));
}
