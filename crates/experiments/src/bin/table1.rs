//! Prints Table 1 of the paper from the live default configuration.
//!
//! ```text
//! cargo run --release -p mp2p-experiments --bin table1
//! ```

use mp2p_experiments::{render_table, table1_rows};

fn main() {
    println!("Table 1. Simulation Parameters (paper defaults, live from WorldConfig)");
    print!(
        "{}",
        render_table(
            &["Parameter", "Description", "Default Value"],
            &table1_rows()
        )
    );
}
