//! Offline trace analysis: span reconstruction and report cross-checks.
//!
//! This is the library half of the `analyze` binary. It streams a JSONL
//! journal (written with `run --trace`) through the trace crate's
//! [`JournalReader`], folds every event into a [`SpanAssembler`] and a
//! windowed [`MetricsBridge`], and derives the same post-warm-up totals
//! the simulation's own [`RunReport`](mp2p_rpcc::RunReport) keeps —
//! which makes the two independently-computed views comparable *exactly*,
//! counter for counter. A mismatch means the flight recorder and the
//! world disagree about what happened, which is a bug by definition.

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::Path;

use mp2p_metrics::{LatencyStats, MessageClass, Registry, AGE_BUCKETS, AGE_BUCKET_EDGES};
use mp2p_sim::{ItemId, NodeId, SimDuration, SimTime};
use mp2p_trace::bridge::{MetricsBridge, DEFAULT_WINDOW};
use mp2p_trace::reader::{JournalHeader, JournalReader, ReadError};
use mp2p_trace::span::{QuerySpan, SpanAssembler, SpanOutcome};
use mp2p_trace::{json, BlameCause, FrameFateKind, LevelTag, ServedBy, SpanPhase, TraceEvent};

use crate::render_table;

/// Everything the analyzer learns from one journal.
#[derive(Debug)]
pub struct TraceAnalysis {
    /// The journal's validated header.
    pub header: JournalHeader,
    /// Event lines parsed (header excluded).
    pub events: u64,
    /// Span-tagged messages whose `QueryIssued` was never seen
    /// (non-zero means the journal was truncated).
    pub orphan_tagged: u64,
    /// Reconstructed spans, sorted by query id.
    pub spans: Vec<QuerySpan>,
    /// Windowed time series folded from the same stream.
    pub registry: Registry,
    /// Divergence timeline and blame partition rebuilt from the
    /// observatory's schema-2 records (empty on a schema-1 journal or an
    /// observatory-off run).
    pub consistency: ConsistencyTimeline,
    /// Causal provenance graph rebuilt from the schema-4 frame/lineage
    /// records plus the obstruction and recovery evidence of earlier
    /// schemas. Frame-level fields stay empty on a provenance-off run.
    pub provenance: ProvenanceGraph,
}

/// One divergence-sampler tick replayed out of the journal: the global
/// replica state at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivergenceSample {
    /// Sim time of the snapshot.
    pub at: SimTime,
    /// Cached copies holding the current master version.
    pub fresh_copies: u32,
    /// Cached copies audited in total.
    pub total_copies: u32,
    /// Items with at least one cached copy.
    pub items_replicated: u32,
    /// Largest replica count of any single item.
    pub max_replicas: u32,
    /// Connected components among switched-on nodes.
    pub partitions: u32,
    /// Nodes holding at least one relay duty.
    pub relay_nodes: u32,
    /// Stale-copy ages over [`AGE_BUCKET_EDGES`] (last bucket overflow).
    pub ages: [u32; AGE_BUCKETS],
}

impl DivergenceSample {
    /// Fraction of cached copies that are fresh (1.0 when nothing is
    /// cached — an empty cache serves nothing stale).
    pub fn fresh_fraction(&self) -> f64 {
        if self.total_copies == 0 {
            1.0
        } else {
            f64::from(self.fresh_copies) / f64::from(self.total_copies)
        }
    }
}

/// The consistency observatory's journal-side view: every
/// `ConsistencySample` tick in order plus the blame partition folded
/// from the `StaleServe` records. Mirrors the world's end-of-run
/// `ConsistencyReport` so the two independently-kept views can be
/// cross-checked counter for counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyTimeline {
    /// Divergence samples in journal order.
    pub samples: Vec<DivergenceSample>,
    /// Stale serves per cause, [`BlameCause::index`]-indexed.
    pub blame: [u64; BlameCause::ALL.len()],
    /// Stale serves whose staleness exceeded the run's Δ.
    pub delta_violations: u64,
    /// Largest staleness observed on any stale serve.
    pub max_staleness: SimDuration,
}

impl ConsistencyTimeline {
    /// True when the journal carried no observatory records at all.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty() && self.stale_serves() == 0
    }

    /// Total stale serves seen — the blame partition's row sum.
    pub fn stale_serves(&self) -> u64 {
        self.blame.iter().sum()
    }

    /// Folds one journal event into the timeline; ignores all kinds the
    /// observatory does not emit.
    pub fn record(&mut self, at: SimTime, event: &TraceEvent) {
        match *event {
            TraceEvent::ConsistencySample {
                fresh_copies,
                total_copies,
                items_replicated,
                max_replicas,
                partitions,
                relay_nodes,
                ages,
            } => self.samples.push(DivergenceSample {
                at,
                fresh_copies,
                total_copies,
                items_replicated,
                max_replicas,
                partitions,
                relay_nodes,
                ages,
            }),
            TraceEvent::StaleServe {
                cause,
                staleness_ms,
                violation,
                ..
            } => {
                self.blame[cause.index()] += 1;
                self.delta_violations += u64::from(violation);
                self.max_staleness = self
                    .max_staleness
                    .max(SimDuration::from_millis(staleness_ms));
            }
            _ => {}
        }
    }
}

/// Post-warm-up totals derived purely from reconstructed spans, shaped
/// to line up with the corresponding `RunReport` counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTotals {
    /// Spans issued after warm-up that reached a terminal
    /// (↔ `queries_issued` — the world removes queries still in flight
    /// at end of run from its issued count, so served + failed ==
    /// issued stays exact; mirror that censoring here).
    pub issued: u64,
    /// ... of which served (↔ `queries_served()`).
    pub served: u64,
    /// ... of which failed (↔ `queries_failed`).
    pub failed: u64,
    /// Measured spans still open when the journal ended (censored
    /// observations, excluded from `issued`).
    pub open: u64,
    /// Served spans by answer provenance (↔ `RunReport::served_by`).
    pub served_by: [u64; 3],
    /// Latency of measured served spans (↔ `RunReport::latency`).
    pub latency: LatencyStats,
    /// Latency split by consistency level, [`LevelTag::index`]-indexed.
    pub latency_by_level: [LatencyStats; 3],
    /// Latency split by provenance, [`ServedBy::index`]-indexed.
    pub latency_by_served: [LatencyStats; 3],
}

impl SpanTotals {
    /// Fraction of served spans answered from a cached copy.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total: u64 = self.served_by.iter().sum();
        if total == 0 {
            0.0
        } else {
            let hits =
                self.served_by[ServedBy::Relay.index()] + self.served_by[ServedBy::Cache.index()];
            hits as f64 / total as f64
        }
    }
}

/// The report-side counters the span totals must reproduce, either taken
/// from a live `RunReport` or parsed back out of its `to_json` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportTotals {
    /// Queries issued post-warm-up.
    pub queries_issued: u64,
    /// Queries answered post-warm-up.
    pub queries_served: u64,
    /// Queries failed post-warm-up.
    pub queries_failed: u64,
    /// Served split by provenance (source, relay, cache).
    pub served_by: [u64; 3],
}

impl ReportTotals {
    /// Extracts the cross-checkable counters from a `RunReport::to_json`
    /// document. `None` if any expected key is missing or mistyped.
    pub fn from_report_json(text: &str) -> Option<Self> {
        let v = json::parse(text)?;
        let num = |key: &str| v.get(key).and_then(json::Value::as_u64);
        let by = v.get("served_by")?;
        Some(ReportTotals {
            queries_issued: num("queries_issued")?,
            queries_served: num("queries_served")?,
            queries_failed: num("queries_failed")?,
            served_by: [
                by.get("source")?.as_u64()?,
                by.get("relay")?.as_u64()?,
                by.get("cache")?.as_u64()?,
            ],
        })
    }
}

/// The report side of the consistency cross-check: the counters the
/// world's own `ConsistencyReport` serialised into the report JSON,
/// plus the audit's headline staleness numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsistencyReportTotals {
    /// Stale serves per cause from the report's blame object.
    pub blame: [u64; BlameCause::ALL.len()],
    /// Δ-consistency violations counted by the world.
    pub delta_violations: u64,
    /// Divergence samples the world's ticker took.
    pub samples: u64,
    /// The audit's `stale_served` (top-level report key).
    pub stale_served: u64,
    /// The audit's fresh-serve fraction (top-level report key).
    pub fresh_fraction: f64,
}

impl ConsistencyReportTotals {
    /// Extracts the consistency counters from a `RunReport::to_json`
    /// document. `None` when the run had the observatory off (no
    /// `consistency` object) or any expected key is missing.
    pub fn from_report_json(text: &str) -> Option<Self> {
        let v = json::parse(text)?;
        let c = v.get("consistency")?;
        let blame_obj = c.get("blame")?;
        let mut blame = [0u64; BlameCause::ALL.len()];
        for cause in BlameCause::ALL {
            blame[cause.index()] = blame_obj.get(cause.label())?.as_u64()?;
        }
        Some(ConsistencyReportTotals {
            blame,
            delta_violations: c.get("delta_violations")?.as_u64()?,
            samples: c.get("samples")?.as_u64()?,
            stale_served: v.get("stale_served")?.as_u64()?,
            fresh_fraction: v.get("fresh_fraction")?.as_f64()?,
        })
    }
}

/// Compares the journal-derived consistency timeline against the
/// report's counters. One line per mismatch; empty means the flight
/// recorder and the world agree exactly — including the tentpole
/// invariant that the blame rows sum to `stale_served`.
pub fn crosscheck_consistency(
    timeline: &ConsistencyTimeline,
    report: &ConsistencyReportTotals,
) -> Vec<String> {
    let mut mismatches = Vec::new();
    let mut check = |what: &str, journal_side: u64, report_side: u64| {
        if journal_side != report_side {
            mismatches.push(format!(
                "{what}: journal says {journal_side}, report says {report_side}"
            ));
        }
    };
    check(
        "divergence samples",
        timeline.samples.len() as u64,
        report.samples,
    );
    check(
        "delta violations",
        timeline.delta_violations,
        report.delta_violations,
    );
    for cause in BlameCause::ALL {
        check(
            &format!("blamed on {}", cause.label()),
            timeline.blame[cause.index()],
            report.blame[cause.index()],
        );
    }
    check(
        "stale serves (blame row sum)",
        timeline.stale_serves(),
        report.stale_served,
    );
    mismatches
}

/// One frame's birth record: where it entered the network and what it
/// carried. Keyed by the frame's deterministic `(origin, seq)` identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameBirth {
    /// When the origin first transmitted the frame.
    pub at: SimTime,
    /// What the frame carried on the air.
    pub class: MessageClass,
    /// Final unicast destination; `None` for a flood.
    pub dest: Option<NodeId>,
    /// The propagated item, if this was a propagation frame.
    pub item: Option<ItemId>,
    /// The propagated master version (only meaningful with `item`).
    pub version: u64,
}

/// One terminal a frame reached at one node (a frame can have several:
/// every flood copy meets its own fate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameFateRecord {
    /// When the fate occurred.
    pub at: SimTime,
    /// The node where the frame ended.
    pub node: NodeId,
    /// What happened.
    pub fate: FrameFateKind,
}

/// One cached copy's installation record: which frame carried it in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineageRecord {
    /// When the copy was installed or refreshed.
    pub at: SimTime,
    /// The installed version.
    pub version: u64,
    /// The carrying frame's originating node.
    pub origin: NodeId,
    /// The carrying frame's origin-local sequence number.
    pub frame: u64,
    /// Hops the carrying frame travelled.
    pub hops: u8,
}

/// One stale serve lifted out of the journal, ready to be explained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleServeRecord {
    /// When the stale answer was served.
    pub at: SimTime,
    /// The peer that answered stale.
    pub node: NodeId,
    /// The query that got the stale answer.
    pub query: u64,
    /// The stale item.
    pub item: ItemId,
    /// The blame tracker's proximate cause.
    pub cause: BlameCause,
    /// How long the served version had been superseded, in ms.
    pub staleness_ms: u64,
    /// Versions behind the master.
    pub lag: u64,
    /// True if the staleness exceeded the run's Δ.
    pub violation: bool,
}

/// Per-node health counters folded from the provenance records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeHealth {
    /// Frames this node originated (`FrameBorn`).
    pub born: u64,
    /// Frames this node re-transmitted for others (`FrameHop`) — its
    /// relay load.
    pub forwards: u64,
    /// Frames delivered at this node.
    pub delivered: u64,
    /// Flood copies suppressed here as duplicates.
    pub dups: u64,
    /// Frames lost at this node (every loss fate).
    pub lost: u64,
    /// Stale answers this node served.
    pub stale_serves: u64,
    /// Total staleness this node served, in ms (its contribution to the
    /// run's inconsistency).
    pub staleness_ms: u64,
}

impl NodeHealth {
    /// All frame terminals observed at this node.
    pub fn fates(&self) -> u64 {
        self.delivered + self.dups + self.lost
    }

    /// Fraction of frame terminals at this node that were losses.
    pub fn drop_rate(&self) -> f64 {
        if self.fates() == 0 {
            0.0
        } else {
            self.lost as f64 / self.fates() as f64
        }
    }
}

/// The offline causal graph: every provenance record of one journal,
/// indexed for the `--explain` walk. Frames are keyed by their
/// deterministic `(origin, seq)` identity; obstruction (partitions,
/// crashes, lease expiries, undeliverables) and recovery (resyncs,
/// retransmits, handovers) evidence is kept alongside so a stale serve
/// can be walked back to the hazard that caused it and forward to the
/// action that repaired it.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceGraph {
    frames: BTreeMap<(NodeId, u64), FrameBirth>,
    fates: BTreeMap<(NodeId, u64), Vec<FrameFateRecord>>,
    lineages: BTreeMap<(NodeId, ItemId), Vec<LineageRecord>>,
    updates: BTreeMap<ItemId, Vec<(SimTime, NodeId, u64)>>,
    /// Stale serves in journal order (the incidents to explain).
    pub stale_serves: Vec<StaleServeRecord>,
    partition_starts: Vec<SimTime>,
    partition_heals: Vec<SimTime>,
    status_flips: BTreeMap<NodeId, Vec<(SimTime, bool)>>,
    crashes: BTreeMap<NodeId, Vec<SimTime>>,
    lease_expiries: BTreeMap<(NodeId, ItemId), Vec<SimTime>>,
    undeliverables: Vec<(SimTime, NodeId, NodeId, MessageClass)>,
    resyncs: BTreeMap<NodeId, Vec<(SimTime, u32)>>,
    retransmits: Vec<(SimTime, NodeId, NodeId, ItemId, u8)>,
    handovers: Vec<(SimTime, NodeId, NodeId, ItemId)>,
    health: BTreeMap<NodeId, NodeHealth>,
    links: BTreeMap<(NodeId, NodeId), u64>,
}

impl ProvenanceGraph {
    /// True when the journal carried frame-level provenance records
    /// (i.e. the run had `--provenance` on and the sink spoke schema 4).
    pub fn has_frames(&self) -> bool {
        !self.frames.is_empty()
    }

    /// The birth record of one frame, if its `FrameBorn` was journaled.
    pub fn frame(&self, origin: NodeId, seq: u64) -> Option<&FrameBirth> {
        self.frames.get(&(origin, seq))
    }

    /// Per-node health counters, node-ordered.
    pub fn node_health(&self) -> &BTreeMap<NodeId, NodeHealth> {
        &self.health
    }

    /// Per-link MAC-drop counts (`transmitter → next hop`), link-ordered.
    pub fn link_drops(&self) -> &BTreeMap<(NodeId, NodeId), u64> {
        &self.links
    }

    /// Folds one journal event into the graph; ignores kinds that carry
    /// no causal evidence.
    pub fn record(&mut self, at: SimTime, event: &TraceEvent) {
        match *event {
            TraceEvent::FrameBorn {
                node,
                frame,
                class,
                dest,
                item,
                version,
            } => {
                self.frames.insert(
                    (node, frame),
                    FrameBirth {
                        at,
                        class,
                        dest,
                        item,
                        version,
                    },
                );
                self.health.entry(node).or_default().born += 1;
            }
            TraceEvent::FrameHop { node, .. } => {
                self.health.entry(node).or_default().forwards += 1;
            }
            TraceEvent::FrameFate {
                node,
                origin,
                frame,
                fate,
            } => {
                self.fates
                    .entry((origin, frame))
                    .or_default()
                    .push(FrameFateRecord { at, node, fate });
                let h = self.health.entry(node).or_default();
                match fate {
                    FrameFateKind::Delivered => h.delivered += 1,
                    FrameFateKind::DupDrop => h.dups += 1,
                    _ => h.lost += 1,
                }
            }
            TraceEvent::CopyLineage {
                node,
                item,
                version,
                origin,
                frame,
                hops,
            } => {
                self.lineages
                    .entry((node, item))
                    .or_default()
                    .push(LineageRecord {
                        at,
                        version,
                        origin,
                        frame,
                        hops,
                    });
            }
            TraceEvent::SourceUpdate {
                node,
                item,
                version,
            } => {
                self.updates
                    .entry(item)
                    .or_default()
                    .push((at, node, version));
            }
            TraceEvent::StaleServe {
                node,
                query,
                item,
                cause,
                staleness_ms,
                lag,
                violation,
            } => {
                self.stale_serves.push(StaleServeRecord {
                    at,
                    node,
                    query,
                    item,
                    cause,
                    staleness_ms,
                    lag,
                    violation,
                });
                let h = self.health.entry(node).or_default();
                h.stale_serves += 1;
                h.staleness_ms += staleness_ms;
            }
            TraceEvent::PartitionStart { .. } => self.partition_starts.push(at),
            TraceEvent::PartitionHeal { .. } => self.partition_heals.push(at),
            TraceEvent::NodeDown { node } => {
                self.status_flips.entry(node).or_default().push((at, false));
            }
            TraceEvent::NodeUp { node } => {
                self.status_flips.entry(node).or_default().push((at, true));
            }
            TraceEvent::NodeCrash { node } => {
                self.crashes.entry(node).or_default().push(at);
                self.status_flips.entry(node).or_default().push((at, false));
            }
            TraceEvent::NodeRecover { node } => {
                self.status_flips.entry(node).or_default().push((at, true));
            }
            TraceEvent::RelayLeaseExpired { node, item } => {
                self.lease_expiries
                    .entry((node, item))
                    .or_default()
                    .push(at);
            }
            TraceEvent::Undeliverable { node, dest, class } => {
                self.undeliverables.push((at, node, dest, class));
            }
            TraceEvent::ResyncDone { node, stale } => {
                self.resyncs.entry(node).or_default().push((at, stale));
            }
            TraceEvent::RecoveryRetransmit {
                node,
                dest,
                item,
                attempt,
                ..
            } => {
                self.retransmits.push((at, node, dest, item, attempt));
            }
            TraceEvent::RelayHandover { from, to, item } => {
                self.handovers.push((at, from, to, item));
            }
            TraceEvent::MacDrop { node, next_hop, .. } => {
                *self.links.entry((node, next_hop)).or_default() += 1;
            }
            _ => {}
        }
    }

    /// True when `node` was switched off (or crashed, not yet recovered)
    /// at `at`, judged by its last status flip.
    fn is_down(&self, node: NodeId, at: SimTime) -> bool {
        self.status_flips
            .get(&node)
            .and_then(|flips| flips.iter().rev().find(|(t, _)| *t <= at))
            .is_some_and(|&(_, up)| !up)
    }

    /// When the terrain was bisected at `at`, the cut's opening time.
    fn partition_active(&self, at: SimTime) -> Option<SimTime> {
        let opened = self.partition_starts.iter().filter(|t| **t <= at).count();
        let healed = self.partition_heals.iter().filter(|t| **t <= at).count();
        if opened > healed {
            self.partition_starts.iter().rfind(|t| **t <= at).copied()
        } else {
            None
        }
    }

    /// The version the stale holder actually served: the master version
    /// at serve time minus the reported lag.
    fn served_version(&self, s: &StaleServeRecord) -> u64 {
        self.updates
            .get(&s.item)
            .and_then(|ups| ups.iter().rev().find(|(t, _, _)| *t <= s.at))
            .map_or(0, |&(_, _, v)| v.saturating_sub(s.lag))
    }

    /// The earliest source update that superseded the served version, if
    /// the journal saw one.
    fn missed_update(&self, s: &StaleServeRecord, served_v: u64) -> Option<(SimTime, NodeId, u64)> {
        self.updates
            .get(&s.item)
            .and_then(|ups| ups.iter().find(|&&(t, _, v)| v > served_v && t <= s.at))
            .copied()
    }

    /// Propagation frames carrying a version of `item` newer than
    /// `served_v`, born at or before `until`, key-ordered.
    fn superseding_frames(
        &self,
        item: ItemId,
        served_v: u64,
        until: SimTime,
    ) -> impl Iterator<Item = (&(NodeId, u64), &FrameBirth)> {
        self.frames.iter().filter(move |(_, birth)| {
            birth.item == Some(item) && birth.version > served_v && birth.at <= until
        })
    }

    /// Builds the full causal chain for one stale serve: the missed
    /// update, the stale copy's lineage, the cause-specific hazard
    /// evidence, and the recovery action that eventually repaired it.
    /// Always returns at least four lines — when a specific evidence
    /// record is missing the line says so instead of disappearing.
    fn chain_for(&self, s: &StaleServeRecord) -> Vec<String> {
        let served_v = self.served_version(s);
        let mut chain = Vec::with_capacity(4);

        // 1. The update the holder missed.
        match self.missed_update(s, served_v) {
            Some((t, src, v)) => chain.push(format!(
                "source {src} updated {} to v{v} at t={:.1}s, superseding the served v{served_v}",
                s.item,
                t.saturating_since(SimTime::ZERO).as_secs_f64(),
            )),
            None => chain.push(format!(
                "no superseding source update for {} appears in the journal \
                 (served v{served_v}, {} versions behind)",
                s.item, s.lag,
            )),
        }

        // 2. How the stale copy got where it was served.
        match self
            .lineages
            .get(&(s.node, s.item))
            .and_then(|l| l.iter().rev().find(|r| r.at <= s.at))
        {
            Some(lin) => chain.push(format!(
                "the served copy (v{}) reached {} via frame {}#{} after {} hop(s) at t={:.1}s",
                lin.version,
                s.node,
                lin.origin,
                lin.frame,
                lin.hops,
                lin.at.saturating_since(SimTime::ZERO).as_secs_f64(),
            )),
            None => chain.push(format!(
                "the served copy's installation at {} left no lineage record \
                 (run without --provenance, or the copy predates the journal)",
                s.node,
            )),
        }

        // 3. Cause-specific hazard evidence.
        chain.push(self.cause_evidence(s, served_v));

        // 4. The repair, if one happened before the run ended.
        chain.push(self.repair_evidence(s, served_v));
        chain
    }

    /// One line of evidence for the blame tracker's proximate cause.
    fn cause_evidence(&self, s: &StaleServeRecord, served_v: u64) -> String {
        let secs = |t: SimTime| t.saturating_since(SimTime::ZERO).as_secs_f64();
        let update_at = self.missed_update(s, served_v).map(|(t, _, _)| t);
        match s.cause {
            BlameCause::Partitioned => {
                let probe = update_at.unwrap_or(s.at);
                if let Some(opened) = self.partition_active(probe) {
                    format!(
                        "the terrain was bisected (cut opened at t={:.1}s) while v{} propagated, \
                         putting {} out of the source's component",
                        secs(opened),
                        served_v + 1,
                        s.node,
                    )
                } else if self.is_down(s.node, probe) {
                    format!(
                        "{} was switched off or crashed while v{} propagated, so no push \
                         could reach it",
                        s.node,
                        served_v + 1,
                    )
                } else {
                    format!(
                        "{} was unreachable from the source when v{} propagated",
                        s.node,
                        served_v + 1,
                    )
                }
            }
            BlameCause::InvalidateLost => {
                let from = update_at.unwrap_or(SimTime::ZERO);
                let lost = self
                    .superseding_frames(s.item, served_v, s.at)
                    .filter(|(_, b)| b.at >= from)
                    .filter_map(|(key, birth)| {
                        self.fates
                            .get(key)
                            .and_then(|fates| fates.iter().find(|f| f.fate.is_loss()))
                            .map(|f| (*key, *birth, *f))
                    })
                    .min_by_key(|(_, _, f)| f.at);
                if let Some(((origin, seq), birth, fate)) = lost {
                    format!(
                        "frame {origin}#{seq} ({}) carrying v{} died at {} (fate: {}) at \
                         t={:.1}s — the propagation never reached {}",
                        birth.class.label(),
                        birth.version,
                        fate.node,
                        fate.fate.label(),
                        secs(fate.at),
                        s.node,
                    )
                } else if let Some(&(t, _, dest, class)) = self
                    .undeliverables
                    .iter()
                    .rev()
                    .find(|&&(t, _, dest, _)| dest == s.node && t <= s.at)
                {
                    format!(
                        "the network gave up on a {} toward {dest} (undeliverable at t={:.1}s) — \
                         the propagation never left its sender",
                        class.label(),
                        secs(t),
                    )
                } else {
                    format!(
                        "a propagation frame carrying v>{served_v} toward {} was lost on the \
                         channel (no frame-level record: run with --provenance to name it)",
                        s.node,
                    )
                }
            }
            BlameCause::CrashWipe => match self
                .crashes
                .get(&s.node)
                .and_then(|c| c.iter().rev().find(|t| **t <= s.at))
            {
                Some(t) => format!(
                    "{} crashed at t={:.1}s, wiping its cache; the re-populated copy lost \
                     its propagation provenance",
                    s.node,
                    secs(*t),
                ),
                None => format!("{}'s volatile state was wiped by a crash", s.node),
            },
            BlameCause::LeaseOrphan => match self
                .lease_expiries
                .get(&(s.node, s.item))
                .and_then(|l| l.iter().rev().find(|t| **t <= s.at))
            {
                Some(t) => format!(
                    "{}'s relay lease on {} expired without source contact at t={:.1}s, \
                     dropping it off every update push path",
                    s.node,
                    s.item,
                    secs(*t),
                ),
                None => format!(
                    "{}'s relay lease on {} expired, orphaning the copy",
                    s.node, s.item,
                ),
            },
            BlameCause::RaceInFlight => {
                let late = self
                    .superseding_frames(s.item, served_v, s.at)
                    .filter_map(|(key, birth)| {
                        self.fates
                            .get(key)
                            .and_then(|fates| {
                                fates.iter().find(|f| {
                                    f.node == s.node
                                        && f.fate == FrameFateKind::Delivered
                                        && f.at >= s.at
                                })
                            })
                            .map(|f| (*key, *birth, f.at))
                    })
                    .min_by_key(|&(_, _, at)| at);
                match late {
                    Some(((origin, seq), birth, delivered_at)) => format!(
                        "frame {origin}#{seq} carrying v{} was in flight: born t={:.1}s, \
                         delivered to {} only at t={:.1}s — after the serve",
                        birth.version,
                        secs(birth.at),
                        s.node,
                        secs(delivered_at),
                    ),
                    None => format!(
                        "v{} had been transmitted but was not yet applied at {} when it \
                         answered",
                        served_v + 1,
                        s.node,
                    ),
                }
            }
            BlameCause::UpdateNeverSent => format!(
                "no propagation frame carrying v>{served_v} was ever sent toward {} — the \
                 running strategy does not push to this holder",
                s.node,
            ),
        }
    }

    /// One line naming the recovery action that repaired the stale copy,
    /// or saying that none did.
    fn repair_evidence(&self, s: &StaleServeRecord, served_v: u64) -> String {
        let secs = |t: SimTime| t.saturating_since(SimTime::ZERO).as_secs_f64();
        // Earliest post-serve event that put the holder right again.
        let refresh = self
            .lineages
            .get(&(s.node, s.item))
            .and_then(|l| l.iter().find(|r| r.at > s.at && r.version > served_v))
            .map(|r| {
                (
                    r.at,
                    format!(
                        "repaired: a fresh copy (v{}) reached {} via frame {}#{} at t={:.1}s",
                        r.version,
                        s.node,
                        r.origin,
                        r.frame,
                        secs(r.at),
                    ),
                )
            });
        let resync = self
            .resyncs
            .get(&s.node)
            .and_then(|r| r.iter().find(|(t, _)| *t > s.at))
            .map(|&(t, stale)| {
                (
                    t,
                    format!(
                        "repaired: a rejoin resync at {} settled {stale} stale cop(ies) at \
                         t={:.1}s",
                        s.node,
                        secs(t),
                    ),
                )
            });
        let retransmit = self
            .retransmits
            .iter()
            .find(|&&(t, _, dest, item, _)| t > s.at && dest == s.node && item == s.item)
            .map(|&(t, src, _, _, attempt)| {
                (
                    t,
                    format!(
                        "repaired: {src} retransmitted the unacked update (attempt {attempt}) \
                         to {} at t={:.1}s",
                        s.node,
                        secs(t),
                    ),
                )
            });
        let handover = self
            .handovers
            .iter()
            .find(|&&(t, from, to, item)| {
                t > s.at && item == s.item && (from == s.node || to == s.node)
            })
            .map(|&(t, from, to, _)| {
                (
                    t,
                    format!(
                        "repaired: the relay duty for {} was handed from {from} to {to} at \
                         t={:.1}s",
                        s.item,
                        secs(t),
                    ),
                )
            });
        [refresh, resync, retransmit, handover]
            .into_iter()
            .flatten()
            .min_by_key(|(t, _)| *t)
            .map(|(_, line)| line)
            .unwrap_or_else(|| "never repaired before the run ended".to_string())
    }
}

/// One explained stale serve: the journal record plus the causal chain
/// the provenance graph walked for it.
#[derive(Debug, Clone)]
pub struct Incident {
    /// When the stale answer was served.
    pub at: SimTime,
    /// The peer that answered stale.
    pub node: NodeId,
    /// The query that got the stale answer.
    pub query: u64,
    /// The stale item.
    pub item: ItemId,
    /// The blame tracker's proximate cause (the chain's terminal).
    pub cause: BlameCause,
    /// How long the served version had been superseded.
    pub staleness: SimDuration,
    /// Versions behind the master.
    pub lag: u64,
    /// True if the staleness exceeded the run's Δ.
    pub violation: bool,
    /// The causal chain, one human-readable step per line.
    pub chain: Vec<String>,
}

/// Walks every stale serve in the journal back through the provenance
/// graph, producing one explained [`Incident`] per serve, journal-ordered.
pub fn explain_stale_serves(analysis: &TraceAnalysis) -> Vec<Incident> {
    let graph = &analysis.provenance;
    graph
        .stale_serves
        .iter()
        .map(|s| Incident {
            at: s.at,
            node: s.node,
            query: s.query,
            item: s.item,
            cause: s.cause,
            staleness: SimDuration::from_millis(s.staleness_ms),
            lag: s.lag,
            violation: s.violation,
            chain: graph.chain_for(s),
        })
        .collect()
}

/// Cross-checks the explainer's output against the report's consistency
/// counters: every stale serve must carry a causal chain, and the
/// multiset of chain terminal causes must equal the report's blame
/// partition exactly. One line per mismatch; empty means exact agreement.
pub fn crosscheck_explain(incidents: &[Incident], report: &ConsistencyReportTotals) -> Vec<String> {
    let mut mismatches = Vec::new();
    let mut causes = [0u64; BlameCause::ALL.len()];
    for incident in incidents {
        causes[incident.cause.index()] += 1;
        if incident.chain.is_empty() {
            mismatches.push(format!(
                "incident for query {} has no causal chain",
                incident.query
            ));
        }
    }
    for cause in BlameCause::ALL {
        let (explained, reported) = (causes[cause.index()], report.blame[cause.index()]);
        if explained != reported {
            mismatches.push(format!(
                "chains ending in {}: explainer says {explained}, report says {reported}",
                cause.label()
            ));
        }
    }
    if incidents.len() as u64 != report.stale_served {
        mismatches.push(format!(
            "incidents explained: explainer says {}, report says {} stale serves",
            incidents.len(),
            report.stale_served
        ));
    }
    mismatches
}

/// Renders the causal chains, one block per incident. With `query`,
/// only that query's incident is shown (or a note that it was never
/// served stale).
pub fn render_explain(incidents: &[Incident], query: Option<u64>) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(2048);
    let selected: Vec<&Incident> = incidents
        .iter()
        .filter(|i| query.is_none_or(|q| i.query == q))
        .collect();
    match query {
        Some(q) if selected.is_empty() => {
            let _ = writeln!(
                out,
                "\nQuery {q} was not served stale in this journal (nothing to explain)."
            );
            return out;
        }
        Some(q) => {
            let _ = writeln!(out, "\nCausal chain for query {q}:");
        }
        None => {
            let _ = writeln!(
                out,
                "\nCausal chains: {} stale-serve incident(s) explained:",
                selected.len()
            );
        }
    }
    for incident in selected {
        let _ = writeln!(
            out,
            "\n#{} t={:.1}s node {} item {} — cause: {} (lag {}, {:.3}s stale{})",
            incident.query,
            incident.at.saturating_since(SimTime::ZERO).as_secs_f64(),
            incident.node,
            incident.item,
            incident.cause.label(),
            incident.lag,
            incident.staleness.as_secs_f64(),
            if incident.violation {
                ", Δ-violation"
            } else {
                ""
            },
        );
        for (i, step) in incident.chain.iter().enumerate() {
            let _ = writeln!(out, "  {}. {step}", i + 1);
        }
    }
    out
}

/// Renders the per-node and per-link health scoreboard: frame drop
/// rates, relay load, and the staleness-contribution ranking, all from
/// the same provenance graph the explainer walks.
pub fn render_health(analysis: &TraceAnalysis) -> String {
    use std::fmt::Write as _;
    let graph = &analysis.provenance;
    let mut out = String::with_capacity(2048);
    out.push_str("\nPer-node health scoreboard");
    if !graph.has_frames() {
        out.push_str(
            " (no frame provenance in this journal — run with --provenance \
             for the frame columns)",
        );
    }
    out.push_str(":\n");

    let mut nodes: Vec<(&NodeId, &NodeHealth)> = graph
        .node_health()
        .iter()
        .filter(|(_, h)| h.fates() + h.born + h.forwards + h.stale_serves > 0)
        .collect();
    // Staleness contribution first, then frame losses, then node id.
    nodes.sort_by(|(a, ha), (b, hb)| {
        hb.staleness_ms
            .cmp(&ha.staleness_ms)
            .then(hb.lost.cmp(&ha.lost))
            .then(a.cmp(b))
    });
    let mut rows = Vec::with_capacity(nodes.len());
    for (node, h) in nodes {
        rows.push(vec![
            node.to_string(),
            h.born.to_string(),
            h.forwards.to_string(),
            h.delivered.to_string(),
            h.dups.to_string(),
            h.lost.to_string(),
            format!("{:.3}", h.drop_rate()),
            h.stale_serves.to_string(),
            format!("{:.1}", h.staleness_ms as f64 / 1_000.0),
        ]);
    }
    out.push_str(&render_table(
        &[
            "node",
            "born",
            "relayed",
            "delivered",
            "dups",
            "lost",
            "drop rate",
            "stale",
            "stale s",
        ],
        &rows,
    ));

    let mut links: Vec<(&(NodeId, NodeId), &u64)> = graph.link_drops().iter().collect();
    links.sort_by(|(ka, na), (kb, nb)| nb.cmp(na).then(ka.cmp(kb)));
    if !links.is_empty() {
        out.push_str("\nLossiest links (MAC drops, transmitter -> next hop):\n");
        let mut rows = Vec::new();
        for (&(from, to), n) in links.into_iter().take(10) {
            rows.push(vec![format!("{from} -> {to}"), n.to_string()]);
        }
        out.push_str(&render_table(&["link", "drops"], &rows));
    }
    let _ = writeln!(
        out,
        "\nTotals: {} frames born, {} stale serves across {} node(s).",
        graph.frames.len(),
        graph.stale_serves.len(),
        graph.node_health().len(),
    );
    out
}

/// Streams a journal into spans and windowed metrics.
pub fn analyze_journal<R: BufRead>(input: R) -> Result<TraceAnalysis, ReadError> {
    let mut reader = JournalReader::new(input)?;
    let header = reader.header();
    let warmup = SimDuration::from_millis(header.warmup_ms);
    let mut assembler = SpanAssembler::new();
    let mut bridge = MetricsBridge::new(DEFAULT_WINDOW, warmup);
    let mut consistency = ConsistencyTimeline::default();
    let mut provenance = ProvenanceGraph::default();
    let mut events = 0u64;
    for entry in reader.by_ref() {
        let (at, event) = entry?;
        assembler.record(at, &event);
        bridge.record(at, &event);
        consistency.record(at, &event);
        provenance.record(at, &event);
        events += 1;
    }
    Ok(TraceAnalysis {
        header,
        events,
        orphan_tagged: assembler.orphan_tagged,
        spans: assembler.finish(),
        registry: bridge.into_registry(),
        consistency,
        provenance,
    })
}

/// Opens and streams a journal file.
pub fn analyze_file(path: &Path) -> Result<TraceAnalysis, ReadError> {
    let file = std::fs::File::open(path)?;
    analyze_journal(std::io::BufReader::new(file))
}

impl TraceAnalysis {
    /// The warm-up boundary recorded in the header.
    pub fn warmup(&self) -> SimDuration {
        SimDuration::from_millis(self.header.warmup_ms)
    }

    /// True for spans the world's report also counted (issued after
    /// warm-up — the censoring rule the simulation applies at issue
    /// time).
    pub fn is_measured(&self, span: &QuerySpan) -> bool {
        span.issued.saturating_since(SimTime::ZERO) >= self.warmup()
    }

    /// Folds the measured spans into report-comparable totals.
    pub fn measured_totals(&self) -> SpanTotals {
        let mut t = SpanTotals {
            issued: 0,
            served: 0,
            failed: 0,
            open: 0,
            served_by: [0; 3],
            latency: LatencyStats::default(),
            latency_by_level: Default::default(),
            latency_by_served: Default::default(),
        };
        for span in self.spans.iter().filter(|s| self.is_measured(s)) {
            match span.outcome {
                SpanOutcome::Served { at, served_by } => {
                    t.issued += 1;
                    t.served += 1;
                    t.served_by[served_by.index()] += 1;
                    let latency = at.saturating_since(span.issued);
                    t.latency.record(latency);
                    t.latency_by_level[span.level.index()].record(latency);
                    t.latency_by_served[served_by.index()].record(latency);
                }
                SpanOutcome::Failed { .. } => {
                    t.issued += 1;
                    t.failed += 1;
                }
                SpanOutcome::Open => t.open += 1,
            }
        }
        t
    }

    /// Spans whose `QueryServed` terminal was seen (any issue time).
    pub fn answered_spans(&self) -> impl Iterator<Item = &QuerySpan> {
        self.spans
            .iter()
            .filter(|s| matches!(s.outcome, SpanOutcome::Served { .. }))
    }
}

/// Compares span-derived totals against the report's counters. Returns
/// one human-readable line per mismatch; empty means exact agreement.
pub fn crosscheck(totals: &SpanTotals, report: &ReportTotals) -> Vec<String> {
    let mut mismatches = Vec::new();
    let mut check = |what: &str, span_side: u64, report_side: u64| {
        if span_side != report_side {
            mismatches.push(format!(
                "{what}: spans say {span_side}, report says {report_side}"
            ));
        }
    };
    check("queries issued", totals.issued, report.queries_issued);
    check("queries served", totals.served, report.queries_served);
    check("queries failed", totals.failed, report.queries_failed);
    for by in ServedBy::ALL {
        check(
            &format!("served by {}", by.label()),
            totals.served_by[by.index()],
            report.served_by[by.index()],
        );
    }
    mismatches
}

fn fmt_latency(stats: &LatencyStats) -> Vec<String> {
    vec![
        stats.count().to_string(),
        format!("{:.3}", stats.mean_secs()),
        format!("{:.3}", stats.percentile(0.50).as_secs_f64()),
        format!("{:.3}", stats.percentile(0.95).as_secs_f64()),
        format!("{:.3}", stats.percentile(0.99).as_secs_f64()),
        format!("{:.3}", stats.max().as_secs_f64()),
    ]
}

/// Renders the full per-run report: outcomes, latency percentiles by
/// level and provenance, the span-phase breakdown, the traffic timeline,
/// and the `top` slowest spans.
pub fn render_analysis(analysis: &TraceAnalysis, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    let totals = analysis.measured_totals();

    let _ = writeln!(
        out,
        "Journal: schema {}, {} events, {} spans ({} measured post-warm-up), warm-up {}",
        analysis.header.schema,
        analysis.events,
        analysis.spans.len(),
        totals.issued,
        analysis.warmup(),
    );
    if analysis.orphan_tagged > 0 {
        let _ = writeln!(
            out,
            "warning: {} span-tagged messages had no QueryIssued (truncated journal?)",
            analysis.orphan_tagged
        );
    }

    out.push_str("\nOutcomes (measured):\n");
    let rows = vec![
        vec!["served".to_string(), totals.served.to_string()],
        vec!["failed".to_string(), totals.failed.to_string()],
        vec!["open at end".to_string(), totals.open.to_string()],
        vec![
            "served by source".to_string(),
            totals.served_by[ServedBy::Source.index()].to_string(),
        ],
        vec![
            "served by relay".to_string(),
            totals.served_by[ServedBy::Relay.index()].to_string(),
        ],
        vec![
            "served by cache".to_string(),
            totals.served_by[ServedBy::Cache.index()].to_string(),
        ],
        vec![
            "cache-hit ratio".to_string(),
            format!("{:.4}", totals.cache_hit_ratio()),
        ],
    ];
    out.push_str(&render_table(&["outcome", "count"], &rows));

    out.push_str("\nLatency by consistency level (seconds):\n");
    let header = ["level", "count", "mean", "p50", "p95", "p99", "max"];
    let mut rows = Vec::new();
    for level in LevelTag::ALL {
        let stats = &totals.latency_by_level[level.index()];
        if stats.count() == 0 {
            continue;
        }
        let mut row = vec![level.label().to_string()];
        row.extend(fmt_latency(stats));
        rows.push(row);
    }
    let mut all_row = vec!["all".to_string()];
    all_row.extend(fmt_latency(&totals.latency));
    rows.push(all_row);
    out.push_str(&render_table(&header, &rows));

    out.push_str("\nLatency by answer provenance (seconds):\n");
    let header = ["served by", "count", "mean", "p50", "p95", "p99", "max"];
    let mut rows = Vec::new();
    for by in ServedBy::ALL {
        let stats = &totals.latency_by_served[by.index()];
        if stats.count() == 0 {
            continue;
        }
        let mut row = vec![by.label().to_string()];
        row.extend(fmt_latency(stats));
        rows.push(row);
    }
    out.push_str(&render_table(&header, &rows));

    // Per-phase time: every measured span's critical path, aggregated by
    // segment label. "local" segments are same-instant cache hits.
    out.push_str("\nSpan-phase breakdown (critical-path time, measured spans):\n");
    let labels: Vec<&str> = SpanPhase::ALL
        .iter()
        .map(|p| p.label())
        .chain(["local", "issue"])
        .collect();
    let mut time_ms = vec![0u64; labels.len()];
    let mut seg_count = vec![0u64; labels.len()];
    for span in analysis.spans.iter().filter(|s| analysis.is_measured(s)) {
        for seg in span.critical_path() {
            if let Some(i) = labels.iter().position(|&l| l == seg.label) {
                time_ms[i] += seg.duration().as_millis();
                seg_count[i] += 1;
            }
        }
    }
    let mut rows = Vec::new();
    for (i, label) in labels.iter().enumerate() {
        if seg_count[i] == 0 {
            continue;
        }
        rows.push(vec![
            label.to_string(),
            seg_count[i].to_string(),
            format!("{:.1}", time_ms[i] as f64 / 1_000.0),
            format!("{:.1}", time_ms[i] as f64 / seg_count[i] as f64 / 1_000.0),
        ]);
    }
    out.push_str(&render_table(
        &["phase", "segments", "total s", "mean s"],
        &rows,
    ));

    // Traffic timeline: the bridge's windowed byte counter, one row per
    // window that saw traffic.
    if let Some(bytes) = analysis.registry.counter("traffic_bytes_total") {
        out.push_str("\nTraffic timeline (post-warm-up bytes per window):\n");
        let window_secs = analysis.registry.window().as_secs_f64();
        let mut rows = Vec::new();
        for (i, n) in bytes.series().iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let start = i as f64 * window_secs;
            rows.push(vec![
                format!("{:.0}-{:.0}s", start, start + window_secs),
                n.to_string(),
            ]);
        }
        out.push_str(&render_table(&["window", "bytes"], &rows));
    }

    if top > 0 {
        let _ = writeln!(out, "\nTop {top} slowest served spans:");
        let mut served: Vec<&QuerySpan> = analysis
            .answered_spans()
            .filter(|s| analysis.is_measured(s))
            .collect();
        served.sort_by_key(|s| std::cmp::Reverse(s.latency().unwrap_or(SimDuration::ZERO)));
        let mut rows = Vec::new();
        for span in served.into_iter().take(top) {
            let trail: Vec<&str> = span.critical_path().iter().map(|s| s.label).collect();
            rows.push(vec![
                span.query.to_string(),
                span.node.to_string(),
                span.item.to_string(),
                span.level.label().to_string(),
                format!(
                    "{:.3}",
                    span.latency().unwrap_or(SimDuration::ZERO).as_secs_f64()
                ),
                format!("{}/{}", span.sends, span.hops.len()),
                trail.join(">"),
            ]);
        }
        out.push_str(&render_table(
            &["query", "node", "item", "lvl", "latency s", "tx/rx", "path"],
            &rows,
        ));
    }
    out
}

/// Human labels for the staleness-age histogram columns, derived from
/// [`AGE_BUCKET_EDGES`] so a bucket change cannot desynchronise the
/// rendering.
fn age_bucket_labels() -> Vec<String> {
    let secs: Vec<u64> = AGE_BUCKET_EDGES
        .iter()
        .map(|e| e.as_millis() / 1000)
        .collect();
    let mut labels = Vec::with_capacity(AGE_BUCKETS);
    labels.push(format!("<{}s", secs[0]));
    for w in secs.windows(2) {
        labels.push(format!("{}-{}s", w[0], w[1]));
    }
    labels.push(format!(">={}s", secs[secs.len() - 1]));
    labels
}

/// Renders the consistency observatory's view of one journal: the
/// divergence timeline (one row per sampler tick), the per-cause blame
/// table (rows sum exactly to the stale serves seen), and the Δ-violation
/// headline.
pub fn render_consistency(timeline: &ConsistencyTimeline) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(2048);
    if timeline.is_empty() {
        out.push_str(
            "\nConsistency observatory: no records in this journal \
             (run with --consistency to enable the sampler and blame tracker).\n",
        );
        return out;
    }

    out.push_str("\nDivergence timeline (one row per sampler tick):\n");
    let age_labels = age_bucket_labels();
    let mut header: Vec<&str> = vec![
        "t",
        "fresh frac",
        "fresh/total",
        "items",
        "max reps",
        "parts",
        "relays",
    ];
    header.extend(age_labels.iter().map(String::as_str));
    let mut rows = Vec::with_capacity(timeline.samples.len());
    for s in &timeline.samples {
        let mut row = vec![
            format!("{:.0}s", s.at.saturating_since(SimTime::ZERO).as_secs_f64()),
            format!("{:.4}", s.fresh_fraction()),
            format!("{}/{}", s.fresh_copies, s.total_copies),
            s.items_replicated.to_string(),
            s.max_replicas.to_string(),
            s.partitions.to_string(),
            s.relay_nodes.to_string(),
        ];
        row.extend(s.ages.iter().map(u32::to_string));
        rows.push(row);
    }
    out.push_str(&render_table(&header, &rows));

    out.push_str("\nStale-serve blame (rows sum exactly to stale serves):\n");
    let total = timeline.stale_serves();
    let mut rows = Vec::new();
    for cause in BlameCause::ALL {
        let n = timeline.blame[cause.index()];
        if n == 0 {
            continue;
        }
        let share = if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        };
        rows.push(vec![
            cause.label().to_string(),
            n.to_string(),
            format!("{:.1}%", share * 100.0),
        ]);
    }
    rows.push(vec!["total".to_string(), total.to_string(), String::new()]);
    out.push_str(&render_table(&["cause", "stale serves", "share"], &rows));

    let _ = writeln!(
        out,
        "\nΔ-consistency violations: {} (staleness above the protocol's Δ); \
         max staleness served: {:.3}s",
        timeline.delta_violations,
        timeline.max_staleness.as_secs_f64(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn journal(lines: &[&str]) -> String {
        let mut s = String::from("{\"schema\":1,\"kinds\":27,\"warmup_ms\":60000}\n");
        for line in lines {
            s.push_str(line);
            s.push('\n');
        }
        s
    }

    /// Schema-2 header: the observatory kinds are only legal here.
    fn journal_v2(lines: &[&str]) -> String {
        let mut s = String::from("{\"schema\":2,\"kinds\":29,\"warmup_ms\":60000}\n");
        for line in lines {
            s.push_str(line);
            s.push('\n');
        }
        s
    }

    #[test]
    fn analyze_reconstructs_spans_and_censors_warmup() {
        // Query 1 issued pre-warm-up (censored), query 2 post-warm-up.
        let text = journal(&[
            "{\"t\":1000,\"ev\":\"query_issued\",\"node\":0,\"query\":1,\"item\":3,\"level\":\"SC\"}",
            "{\"t\":1400,\"ev\":\"query_served\",\"node\":0,\"query\":1,\"level\":\"SC\",\"by\":\"source\",\"issued\":1000}",
            "{\"t\":61000,\"ev\":\"query_issued\",\"node\":1,\"query\":2,\"item\":3,\"level\":\"DC\"}",
            "{\"t\":61000,\"ev\":\"query_phase\",\"node\":1,\"query\":2,\"item\":3,\"phase\":\"poll_flood\",\"attempt\":1}",
            "{\"t\":61000,\"ev\":\"msg_send\",\"node\":1,\"class\":\"POLL\",\"bytes\":48,\"dest\":null,\"span\":2}",
            "{\"t\":61500,\"ev\":\"msg_deliver\",\"node\":1,\"origin\":2,\"class\":\"POLL_ACK_A\",\"hops\":2,\"flood\":false,\"span\":2}",
            "{\"t\":61500,\"ev\":\"query_served\",\"node\":1,\"query\":2,\"level\":\"DC\",\"by\":\"relay\",\"issued\":61000}",
        ]);
        let analysis = analyze_journal(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(analysis.events, 7);
        assert_eq!(analysis.spans.len(), 2);
        assert_eq!(analysis.orphan_tagged, 0);

        let totals = analysis.measured_totals();
        assert_eq!(totals.issued, 1, "pre-warm-up span censored");
        assert_eq!(totals.served, 1);
        assert_eq!(totals.served_by, [0, 1, 0]);
        assert_eq!(totals.cache_hit_ratio(), 1.0);
        assert_eq!(totals.latency.count(), 1);
        assert_eq!(totals.latency.mean(), SimDuration::from_millis(500));
        assert_eq!(totals.latency_by_level[LevelTag::Delta.index()].count(), 1);
        // The bridge saw the same stream: its counters agree.
        assert_eq!(
            analysis
                .registry
                .counter("queries_served_total{by=\"relay\"}")
                .unwrap()
                .total(),
            1
        );
    }

    #[test]
    fn crosscheck_flags_every_divergent_counter() {
        let text = journal(&[
            "{\"t\":61000,\"ev\":\"query_issued\",\"node\":0,\"query\":1,\"item\":3,\"level\":\"SC\"}",
            "{\"t\":61400,\"ev\":\"query_served\",\"node\":0,\"query\":1,\"level\":\"SC\",\"by\":\"cache\",\"issued\":61000}",
        ]);
        let analysis = analyze_journal(BufReader::new(text.as_bytes())).unwrap();
        let totals = analysis.measured_totals();
        let good = ReportTotals {
            queries_issued: 1,
            queries_served: 1,
            queries_failed: 0,
            served_by: [0, 0, 1],
        };
        assert!(crosscheck(&totals, &good).is_empty());
        let bad = ReportTotals {
            queries_issued: 2,
            queries_served: 1,
            queries_failed: 0,
            served_by: [1, 0, 0],
        };
        let mismatches = crosscheck(&totals, &bad);
        assert_eq!(mismatches.len(), 3, "{mismatches:?}");
    }

    #[test]
    fn report_totals_parse_from_report_json() {
        let text = "{\"queries_issued\":10,\"queries_served\":8,\"queries_failed\":2,\
                    \"served_by\":{\"source\":3,\"relay\":4,\"cache\":1},\"cache_hit_ratio\":0.625}";
        let totals = ReportTotals::from_report_json(text).unwrap();
        assert_eq!(totals.queries_issued, 10);
        assert_eq!(totals.served_by, [3, 4, 1]);
        assert!(ReportTotals::from_report_json("{\"queries_issued\":10}").is_none());
    }

    #[test]
    fn render_analysis_mentions_the_key_sections() {
        let text = journal(&[
            "{\"t\":61000,\"ev\":\"query_issued\",\"node\":0,\"query\":1,\"item\":3,\"level\":\"SC\"}",
            "{\"t\":61000,\"ev\":\"query_phase\",\"node\":0,\"query\":1,\"item\":3,\"phase\":\"fetch\",\"attempt\":1}",
            "{\"t\":61900,\"ev\":\"query_served\",\"node\":0,\"query\":1,\"level\":\"SC\",\"by\":\"source\",\"issued\":61000}",
        ]);
        let analysis = analyze_journal(BufReader::new(text.as_bytes())).unwrap();
        let report = render_analysis(&analysis, 5);
        for needle in [
            "Outcomes (measured)",
            "Latency by consistency level",
            "Span-phase breakdown",
            "slowest served spans",
            "fetch",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn consistency_timeline_folds_observatory_records() {
        let text = journal_v2(&[
            "{\"t\":30000,\"ev\":\"consistency\",\"fresh\":5,\"copies\":8,\"items\":4,\
             \"max_replicas\":3,\"partitions\":2,\"relay_nodes\":6,\"ages\":[1,1,1,0,0,0]}",
            "{\"t\":60000,\"ev\":\"consistency\",\"fresh\":8,\"copies\":8,\"items\":4,\
             \"max_replicas\":3,\"partitions\":1,\"relay_nodes\":6,\"ages\":[0,0,0,0,0,0]}",
            "{\"t\":61000,\"ev\":\"stale_serve\",\"node\":3,\"query\":9,\"item\":2,\
             \"cause\":\"partitioned\",\"staleness_ms\":2500,\"lag\":1,\"violation\":false}",
            "{\"t\":62000,\"ev\":\"stale_serve\",\"node\":4,\"query\":10,\"item\":2,\
             \"cause\":\"invalidate_lost\",\"staleness_ms\":400000,\"lag\":2,\"violation\":true}",
        ]);
        let analysis = analyze_journal(BufReader::new(text.as_bytes())).unwrap();
        let timeline = &analysis.consistency;
        assert!(!timeline.is_empty());
        assert_eq!(timeline.samples.len(), 2);
        assert_eq!(timeline.samples[0].at, SimTime::from_millis(30000));
        assert_eq!(timeline.samples[0].fresh_fraction(), 5.0 / 8.0);
        assert_eq!(timeline.samples[1].fresh_fraction(), 1.0);
        assert_eq!(timeline.stale_serves(), 2);
        assert_eq!(timeline.blame[BlameCause::Partitioned.index()], 1);
        assert_eq!(timeline.blame[BlameCause::InvalidateLost.index()], 1);
        assert_eq!(timeline.delta_violations, 1);
        assert_eq!(timeline.max_staleness, SimDuration::from_millis(400000));
    }

    #[test]
    fn schema_one_journal_yields_an_empty_timeline() {
        let text = journal(&[
            "{\"t\":61000,\"ev\":\"query_issued\",\"node\":0,\"query\":1,\"item\":3,\"level\":\"SC\"}",
        ]);
        let analysis = analyze_journal(BufReader::new(text.as_bytes())).unwrap();
        assert!(analysis.consistency.is_empty());
        let rendered = render_consistency(&analysis.consistency);
        assert!(rendered.contains("no records"), "{rendered}");
    }

    #[test]
    fn consistency_report_totals_parse_from_report_json() {
        let text = "{\"queries_issued\":10,\"stale_served\":6,\"fresh_fraction\":0.925,\
                    \"max_staleness_secs\":12.5,\
                    \"consistency\":{\"stale_attributed\":6,\"delta_violations\":2,\"samples\":16,\
                    \"blame\":{\"partitioned\":3,\"invalidate_lost\":1,\"crash_wipe\":0,\
                    \"lease_orphan\":0,\"race_in_flight\":1,\"update_never_sent\":1}}}";
        let totals = ConsistencyReportTotals::from_report_json(text).unwrap();
        assert_eq!(totals.blame, [3, 1, 0, 0, 1, 1]);
        assert_eq!(totals.delta_violations, 2);
        assert_eq!(totals.samples, 16);
        assert_eq!(totals.stale_served, 6);
        assert!((totals.fresh_fraction - 0.925).abs() < 1e-12);
        // An observatory-off report has no consistency object at all.
        assert!(ConsistencyReportTotals::from_report_json("{\"stale_served\":6}").is_none());
    }

    #[test]
    fn consistency_crosscheck_flags_every_divergent_counter() {
        let mut timeline = ConsistencyTimeline::default();
        timeline.record(
            SimTime::from_millis(30000),
            &TraceEvent::ConsistencySample {
                fresh_copies: 4,
                total_copies: 4,
                items_replicated: 2,
                max_replicas: 2,
                partitions: 1,
                relay_nodes: 3,
                ages: [0; AGE_BUCKETS],
            },
        );
        timeline.record(
            SimTime::from_millis(31000),
            &TraceEvent::StaleServe {
                node: mp2p_sim::NodeId::new(1),
                query: 7,
                item: mp2p_sim::ItemId::new(0),
                cause: BlameCause::RaceInFlight,
                staleness_ms: 100,
                lag: 1,
                violation: false,
            },
        );
        let good = ConsistencyReportTotals {
            blame: [0, 0, 0, 0, 1, 0],
            delta_violations: 0,
            samples: 1,
            stale_served: 1,
            fresh_fraction: 0.99,
        };
        assert!(crosscheck_consistency(&timeline, &good).is_empty());
        let bad = ConsistencyReportTotals {
            blame: [1, 0, 0, 0, 0, 0],
            delta_violations: 1,
            samples: 2,
            stale_served: 3,
            fresh_fraction: 0.99,
        };
        let mismatches = crosscheck_consistency(&timeline, &bad);
        // samples, violations, two blame causes, and the row sum all differ.
        assert_eq!(mismatches.len(), 5, "{mismatches:?}");
    }

    #[test]
    fn render_consistency_shows_timeline_and_blame_partition() {
        let text = journal_v2(&[
            "{\"t\":30000,\"ev\":\"consistency\",\"fresh\":5,\"copies\":8,\"items\":4,\
             \"max_replicas\":3,\"partitions\":2,\"relay_nodes\":6,\"ages\":[1,1,1,0,0,0]}",
            "{\"t\":61000,\"ev\":\"stale_serve\",\"node\":3,\"query\":9,\"item\":2,\
             \"cause\":\"crash_wipe\",\"staleness_ms\":2500,\"lag\":1,\"violation\":true}",
        ]);
        let analysis = analyze_journal(BufReader::new(text.as_bytes())).unwrap();
        let rendered = render_consistency(&analysis.consistency);
        for needle in [
            "Divergence timeline",
            "0.6250",
            "5/8",
            "Stale-serve blame",
            "crash_wipe",
            "violations: 1",
        ] {
            assert!(
                rendered.contains(needle),
                "missing {needle:?} in:\n{rendered}"
            );
        }
        // Zero-count causes are elided; the total row still closes the sum.
        assert!(!rendered.contains("update_never_sent"));
        assert!(rendered.contains("total"));
    }

    /// Schema-4 header: the provenance kinds are only legal here.
    fn journal_v4(lines: &[&str]) -> String {
        let mut s = String::from("{\"schema\":4,\"kinds\":38,\"warmup_ms\":60000}\n");
        for line in lines {
            s.push_str(line);
            s.push('\n');
        }
        s
    }

    /// A hand-built provenance incident: v1 reaches node 1, v2's
    /// invalidation frame dies in a burst, node 1 serves stale, and a
    /// later frame repairs the copy.
    fn synthetic_provenance_journal() -> String {
        journal_v4(&[
            "{\"t\":61000,\"ev\":\"source_update\",\"node\":2,\"item\":5,\"version\":1}",
            "{\"t\":61100,\"ev\":\"frame_born\",\"node\":2,\"frame\":0,\
             \"class\":\"INVALIDATION\",\"dest\":null,\"item\":5,\"version\":1}",
            "{\"t\":61150,\"ev\":\"frame_hop\",\"node\":3,\"origin\":2,\"frame\":0,\"hops\":1}",
            "{\"t\":61200,\"ev\":\"frame_fate\",\"node\":1,\"origin\":2,\"frame\":0,\
             \"fate\":\"delivered\"}",
            "{\"t\":61200,\"ev\":\"copy_lineage\",\"node\":1,\"item\":5,\"version\":1,\
             \"origin\":2,\"frame\":0,\"hops\":2}",
            "{\"t\":70000,\"ev\":\"source_update\",\"node\":2,\"item\":5,\"version\":2}",
            "{\"t\":70100,\"ev\":\"frame_born\",\"node\":2,\"frame\":1,\
             \"class\":\"INVALIDATION\",\"dest\":null,\"item\":5,\"version\":2}",
            "{\"t\":70200,\"ev\":\"frame_fate\",\"node\":3,\"origin\":2,\"frame\":1,\
             \"fate\":\"burst\"}",
            "{\"t\":71000,\"ev\":\"stale_serve\",\"node\":1,\"query\":9,\"item\":5,\
             \"cause\":\"invalidate_lost\",\"staleness_ms\":1000,\"lag\":1,\"violation\":false}",
            "{\"t\":72000,\"ev\":\"frame_born\",\"node\":2,\"frame\":2,\
             \"class\":\"UPDATE\",\"dest\":1,\"item\":5,\"version\":2}",
            "{\"t\":72300,\"ev\":\"frame_fate\",\"node\":1,\"origin\":2,\"frame\":2,\
             \"fate\":\"delivered\"}",
            "{\"t\":72300,\"ev\":\"copy_lineage\",\"node\":1,\"item\":5,\"version\":2,\
             \"origin\":2,\"frame\":2,\"hops\":1}",
        ])
    }

    #[test]
    fn explain_walks_a_synthetic_incident_end_to_end() {
        let text = synthetic_provenance_journal();
        let analysis = analyze_journal(BufReader::new(text.as_bytes())).unwrap();
        assert!(analysis.provenance.has_frames());
        let incidents = explain_stale_serves(&analysis);
        assert_eq!(incidents.len(), 1);
        let incident = &incidents[0];
        assert_eq!(incident.query, 9);
        assert_eq!(incident.cause, BlameCause::InvalidateLost);
        assert_eq!(incident.chain.len(), 4, "{:#?}", incident.chain);
        // 1. The missed update names the superseding version.
        assert!(incident.chain[0].contains("v2"), "{}", incident.chain[0]);
        assert!(incident.chain[0].contains("M2"), "{}", incident.chain[0]);
        // 2. The lineage names the carrying frame of the stale copy.
        assert!(incident.chain[1].contains("M2#0"), "{}", incident.chain[1]);
        assert!(incident.chain[1].contains("v1"), "{}", incident.chain[1]);
        // 3. The hazard names the lost frame and its fate.
        assert!(incident.chain[2].contains("M2#1"), "{}", incident.chain[2]);
        assert!(incident.chain[2].contains("burst"), "{}", incident.chain[2]);
        // 4. The repair names the frame that brought v2 in after the serve.
        assert!(
            incident.chain[3].contains("repaired"),
            "{}",
            incident.chain[3]
        );
        assert!(incident.chain[3].contains("M2#2"), "{}", incident.chain[3]);

        // The rendering carries the whole chain; the single-query filter
        // selects it and misses return a note instead.
        let rendered = render_explain(&incidents, Some(9));
        assert!(rendered.contains("invalidate_lost"));
        assert!(rendered.contains("M2#1"));
        assert!(render_explain(&incidents, Some(10)).contains("not served stale"));
    }

    #[test]
    fn explain_falls_back_when_provenance_is_absent() {
        // The same stale serve in a schema-2 journal (no frame records):
        // every chain step must still be present, saying what is missing.
        let text = journal_v2(&[
            "{\"t\":70000,\"ev\":\"source_update\",\"node\":2,\"item\":5,\"version\":2}",
            "{\"t\":71000,\"ev\":\"stale_serve\",\"node\":1,\"query\":9,\"item\":5,\
             \"cause\":\"invalidate_lost\",\"staleness_ms\":1000,\"lag\":1,\"violation\":false}",
        ]);
        let analysis = analyze_journal(BufReader::new(text.as_bytes())).unwrap();
        assert!(!analysis.provenance.has_frames());
        let incidents = explain_stale_serves(&analysis);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].chain.len(), 4);
        assert!(incidents[0].chain[1].contains("no lineage record"));
        assert!(incidents[0].chain[2].contains("--provenance"));
        assert!(incidents[0].chain[3].contains("never repaired"));
        // The health board carries the no-frames caveat.
        assert!(render_health(&analysis).contains("no frame provenance"));
    }

    #[test]
    fn crosscheck_explain_flags_every_divergence() {
        let text = synthetic_provenance_journal();
        let analysis = analyze_journal(BufReader::new(text.as_bytes())).unwrap();
        let incidents = explain_stale_serves(&analysis);
        let mut report = ConsistencyReportTotals {
            blame: [0; BlameCause::ALL.len()],
            delta_violations: 0,
            samples: 0,
            stale_served: 1,
            fresh_fraction: 0.99,
        };
        report.blame[BlameCause::InvalidateLost.index()] = 1;
        assert!(crosscheck_explain(&incidents, &report).is_empty());

        // Shifting one count to another cause trips both cause rows.
        report.blame[BlameCause::InvalidateLost.index()] = 0;
        report.blame[BlameCause::Partitioned.index()] = 1;
        let mismatches = crosscheck_explain(&incidents, &report);
        assert_eq!(mismatches.len(), 2, "{mismatches:?}");

        // Losing an incident trips the cause row and the total.
        report.blame[BlameCause::InvalidateLost.index()] = 1;
        report.blame[BlameCause::Partitioned.index()] = 0;
        let mismatches = crosscheck_explain(&[], &report);
        assert_eq!(mismatches.len(), 2, "{mismatches:?}");
    }

    #[test]
    fn health_board_ranks_by_staleness_contribution() {
        let text = synthetic_provenance_journal();
        let analysis = analyze_journal(BufReader::new(text.as_bytes())).unwrap();
        let health = analysis.provenance.node_health();
        let n1 = health.get(&NodeId::new(1)).expect("node 1 active");
        assert_eq!(n1.stale_serves, 1);
        assert_eq!(n1.staleness_ms, 1000);
        assert_eq!(n1.delivered, 2);
        assert_eq!(n1.lost, 0);
        let n2 = health.get(&NodeId::new(2)).expect("node 2 active");
        assert_eq!(n2.born, 3);
        let n3 = health.get(&NodeId::new(3)).expect("node 3 active");
        assert_eq!(n3.forwards, 1);
        assert_eq!(n3.lost, 1);
        assert!((n3.drop_rate() - 1.0).abs() < 1e-9);
        let rendered = render_health(&analysis);
        // Node 1 (1000 ms contribution) ranks above node 3 (one loss).
        let pos_m1 = rendered.find("| M1 ").expect("M1 row");
        let pos_m3 = rendered.find("| M3 ").expect("M3 row");
        assert!(pos_m1 < pos_m3, "{rendered}");
    }
}
