//! The scenario corpus: a dependency-free TOML-subset format describing
//! one named simulation scenario end to end — terrain, mobility model,
//! workload mix, fault plan, strategy set, seeds and per-scenario gate
//! floors.
//!
//! A scenario file is the unit the `matrix` binary sweeps: every
//! `(scenario, strategy, seed)` triple becomes one matrix cell. The
//! format is a deliberately small TOML subset (the workspace is
//! dependency-free, so the parser is hand-rolled here, like the JSON
//! stack in `mp2p_trace::json`):
//!
//! * `# comment` lines and blank lines,
//! * `[section]` headers (`world`, `mobility`, `faults`, `matrix`,
//!   `gates`),
//! * `key = value` pairs where a value is a number, `true`/`false`, a
//!   `"string"` (`\"` and `\\` escapes), or a `[a, b, c]` array of
//!   numbers or strings.
//!
//! Errors are **line-accurate**: [`Scenario::parse`] reports the first
//! offending line by number, both for syntax errors and for semantic
//! ones (unknown keys, values out of range). [`Scenario::to_toml`]
//! writes the canonical form back; parse → serialise → parse is the
//! identity (covered by `tests/scenario_corpus.rs`).
//!
//! # Example
//!
//! ```
//! use mp2p_experiments::scenario::Scenario;
//!
//! let text = r#"
//! schema = 1
//! name = "demo"
//!
//! [world]
//! peers = 10
//! cache = 3
//! range_m = 250
//! terrain_w_m = 700
//! terrain_h_m = 700
//! sim_mins = 6
//! warmup_mins = 1
//! query_secs = 20
//! update_secs = 120
//!
//! [mobility]
//! model = "manhattan"
//! block_m = 100
//! speed_mps = 8
//!
//! [matrix]
//! strategies = ["rpcc", "push"]
//! seeds = [42]
//! "#;
//! let scenario = Scenario::parse(text).unwrap();
//! assert_eq!(scenario.name, "demo");
//! let cfg = scenario.world_config(scenario.strategies[0], 42);
//! cfg.validate();
//! ```

use std::path::Path;

use mp2p_mobility::Terrain;
use mp2p_rpcc::{
    MobilityKind, ObservatoryConfig, RecoveryConfig, Strategy, WorkloadMode, World, WorldConfig,
};
use mp2p_sim::SimDuration;

use crate::{cli, perf};

/// Version tag required in every scenario file (`schema = 1`). Bump on
/// layout changes so old files are refused instead of misread.
pub const SCENARIO_SCHEMA: u64 = 1;

/// A line-accurate scenario-file error: `line` is 1-based (0 for errors
/// that concern the file as a whole, e.g. a missing section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based source line of the offending token (0 = whole file).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: {}", self.msg)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ScenarioError {}

/// The mobility model of a scenario, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilitySpec {
    /// Random waypoint (speeds m/s, max pause seconds).
    Waypoint {
        /// Minimum leg speed (m/s).
        speed_min: f64,
        /// Maximum leg speed (m/s).
        speed_max: f64,
        /// Maximum pause at each waypoint (s).
        max_pause_secs: f64,
    },
    /// Random walk with reflection.
    Walk {
        /// Minimum epoch speed (m/s).
        speed_min: f64,
        /// Maximum epoch speed (m/s).
        speed_max: f64,
        /// Heading-change period (s).
        epoch_secs: f64,
    },
    /// Street-grid (Manhattan) movement.
    Manhattan {
        /// Street-block edge length (m).
        block_m: f64,
        /// Constant speed (m/s).
        speed_mps: f64,
    },
    /// No movement.
    Stationary,
}

impl MobilitySpec {
    /// The model token written to / read from the file.
    pub fn model(&self) -> &'static str {
        match self {
            MobilitySpec::Waypoint { .. } => "waypoint",
            MobilitySpec::Walk { .. } => "walk",
            MobilitySpec::Manhattan { .. } => "manhattan",
            MobilitySpec::Stationary => "stationary",
        }
    }

    /// The core-config mobility kind this spec selects.
    pub fn kind(&self) -> MobilityKind {
        match *self {
            MobilitySpec::Waypoint {
                speed_min,
                speed_max,
                max_pause_secs,
            } => MobilityKind::Waypoint {
                speed_min,
                speed_max,
                max_pause: SimDuration::from_secs_f64(max_pause_secs),
            },
            MobilitySpec::Walk {
                speed_min,
                speed_max,
                epoch_secs,
            } => MobilityKind::Walk {
                speed_min,
                speed_max,
                epoch: SimDuration::from_secs_f64(epoch_secs),
            },
            MobilitySpec::Manhattan { block_m, speed_mps } => MobilityKind::Manhattan {
                block: block_m,
                speed: speed_mps,
            },
            MobilitySpec::Stationary => MobilityKind::Stationary,
        }
    }
}

/// Per-scenario absolute quality floors, checked by the `matrix` binary
/// against every cell of the scenario. `None` disables the axis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GateFloors {
    /// Minimum served fresh fraction.
    pub min_fresh_fraction: Option<f64>,
    /// Maximum 95th-percentile query latency (seconds).
    pub max_p95_latency_secs: Option<f64>,
    /// Minimum event-loop throughput (events/sec; wall-clock, so only
    /// meaningful on known hardware — prefer the baseline gate in CI).
    pub min_events_per_sec: Option<f64>,
}

/// One parsed scenario: everything needed to construct the
/// [`WorldConfig`] of each of its matrix cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (path-safe: `[a-z0-9-]`). Keys matrix cells.
    pub name: String,
    /// One-line human description.
    pub summary: String,
    /// `N_Peers`.
    pub peers: usize,
    /// `C_Num` cache slots per host.
    pub cache: usize,
    /// `C_Range` radio range (m).
    pub range_m: f64,
    /// Terrain width (m).
    pub terrain_w_m: f64,
    /// Terrain height (m).
    pub terrain_h_m: f64,
    /// Simulated duration (seconds; the file says `sim_mins`).
    pub sim_secs: f64,
    /// Warm-up excluded from metrics (seconds; the file says
    /// `warmup_mins`).
    pub warmup_secs: f64,
    /// `I_Query` mean query interval (s).
    pub query_secs: f64,
    /// `I_Update` mean source-update interval (s).
    pub update_secs: f64,
    /// `I_Switch` mean churn interval (s); `None` disables churn.
    pub churn_secs: Option<f64>,
    /// Workload token: `cached-uniform` or `single-item`.
    pub workload: String,
    /// Level-mix token: `sc`, `dc`, `wc` or `hy`.
    pub mix: String,
    /// Run with the hardened protocol knobs.
    pub hardened: bool,
    /// Run with the self-healing recovery layer.
    pub recovery: bool,
    /// Consistency-observatory sample period (s); `None` leaves the
    /// observatory off (cells then report no blame attribution).
    pub consistency_sample_secs: Option<f64>,
    /// Mobility model.
    pub mobility: MobilitySpec,
    /// Fault-plan preset name (`none` or a `FaultPlan::PRESETS` entry).
    pub fault_preset: String,
    /// Strategies every seed is swept across.
    pub strategies: Vec<Strategy>,
    /// Seeds every strategy is swept across.
    pub seeds: Vec<u64>,
    /// Absolute per-cell quality floors.
    pub gates: GateFloors,
}

impl Scenario {
    /// Builds the world configuration of one matrix cell.
    ///
    /// Starts from [`WorldConfig::paper_default`] so every knob the
    /// format does not capture keeps its Table 1 value — which is what
    /// makes a scenario transcribing the defaults reproduce the `run`
    /// binary's output byte for byte.
    pub fn world_config(&self, strategy: Strategy, seed: u64) -> WorldConfig {
        let mut cfg = WorldConfig::paper_default(seed);
        cfg.strategy = strategy;
        cfg.n_peers = self.peers;
        cfg.c_num = self.cache;
        cfg.range = self.range_m;
        cfg.terrain = Terrain::new(self.terrain_w_m, self.terrain_h_m);
        cfg.sim_time = SimDuration::from_secs_f64(self.sim_secs);
        cfg.warmup = SimDuration::from_secs_f64(self.warmup_secs);
        cfg.i_query = SimDuration::from_secs_f64(self.query_secs);
        cfg.i_update = SimDuration::from_secs_f64(self.update_secs);
        cfg.i_switch = self.churn_secs.map(SimDuration::from_secs_f64);
        cfg.workload = match self.workload.as_str() {
            "single-item" => WorkloadMode::SingleItem,
            _ => WorkloadMode::CachedUniform,
        };
        cfg.level_mix = cli::parse_mix(&self.mix).expect("mix validated at parse");
        if self.hardened {
            cfg.proto = cfg.proto.hardened();
        }
        if self.recovery {
            cfg.proto.recovery = RecoveryConfig::on();
        }
        if let Some(secs) = self.consistency_sample_secs {
            cfg.observatory = ObservatoryConfig::full(SimDuration::from_secs_f64(secs));
        }
        cfg.mobility = self.mobility.kind();
        cfg.faults = cli::parse_faults(&self.fault_preset, cfg.sim_time)
            .expect("fault preset validated at parse");
        cfg
    }

    /// Runs one cell of this scenario, unprofiled, and returns the
    /// report. The deterministic counterpart of
    /// [`crate::matrix::run_cell`] — used by the determinism tests.
    pub fn run_cell_report(&self, strategy: Strategy, seed: u64) -> mp2p_rpcc::RunReport {
        World::new(self.world_config(strategy, seed)).run()
    }

    /// Parses one scenario file. Errors carry the 1-based line number of
    /// the first offending token.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let doc = Document::parse(text)?;
        Scenario::from_document(doc)
    }

    /// Reads and parses a scenario file, prefixing errors with the path.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Scenario::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Loads every `*.toml` under `dir`, sorted by scenario name.
    /// Duplicate names are an error (cells are keyed by name).
    pub fn load_dir(dir: &Path) -> Result<Vec<Scenario>, String> {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let mut paths: Vec<_> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .collect();
        paths.sort();
        let mut scenarios = Vec::with_capacity(paths.len());
        for path in &paths {
            scenarios.push(Scenario::load(path)?);
        }
        scenarios.sort_by(|a, b| a.name.cmp(&b.name));
        for pair in scenarios.windows(2) {
            if pair[0].name == pair[1].name {
                return Err(format!(
                    "{}: two scenario files share the name {:?}",
                    dir.display(),
                    pair[0].name
                ));
            }
        }
        Ok(scenarios)
    }

    /// Serialises the canonical TOML form. `parse(to_toml(s)) == s`.
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        let _ = writeln!(s, "schema = {SCENARIO_SCHEMA}");
        let _ = writeln!(s, "name = {}", quote(&self.name));
        if !self.summary.is_empty() {
            let _ = writeln!(s, "summary = {}", quote(&self.summary));
        }
        s.push_str("\n[world]\n");
        let _ = writeln!(s, "peers = {}", self.peers);
        let _ = writeln!(s, "cache = {}", self.cache);
        let _ = writeln!(s, "range_m = {}", self.range_m);
        let _ = writeln!(s, "terrain_w_m = {}", self.terrain_w_m);
        let _ = writeln!(s, "terrain_h_m = {}", self.terrain_h_m);
        let _ = writeln!(s, "sim_mins = {}", self.sim_secs / 60.0);
        let _ = writeln!(s, "warmup_mins = {}", self.warmup_secs / 60.0);
        let _ = writeln!(s, "query_secs = {}", self.query_secs);
        let _ = writeln!(s, "update_secs = {}", self.update_secs);
        if let Some(churn) = self.churn_secs {
            let _ = writeln!(s, "churn_secs = {churn}");
        }
        let _ = writeln!(s, "workload = {}", quote(&self.workload));
        let _ = writeln!(s, "mix = {}", quote(&self.mix));
        if self.hardened {
            s.push_str("hardened = true\n");
        }
        if self.recovery {
            s.push_str("recovery = true\n");
        }
        if let Some(secs) = self.consistency_sample_secs {
            let _ = writeln!(s, "consistency_sample_secs = {secs}");
        }
        s.push_str("\n[mobility]\n");
        let _ = writeln!(s, "model = {}", quote(self.mobility.model()));
        match self.mobility {
            MobilitySpec::Waypoint {
                speed_min,
                speed_max,
                max_pause_secs,
            } => {
                let _ = writeln!(s, "speed_min_mps = {speed_min}");
                let _ = writeln!(s, "speed_max_mps = {speed_max}");
                let _ = writeln!(s, "max_pause_secs = {max_pause_secs}");
            }
            MobilitySpec::Walk {
                speed_min,
                speed_max,
                epoch_secs,
            } => {
                let _ = writeln!(s, "speed_min_mps = {speed_min}");
                let _ = writeln!(s, "speed_max_mps = {speed_max}");
                let _ = writeln!(s, "epoch_secs = {epoch_secs}");
            }
            MobilitySpec::Manhattan { block_m, speed_mps } => {
                let _ = writeln!(s, "block_m = {block_m}");
                let _ = writeln!(s, "speed_mps = {speed_mps}");
            }
            MobilitySpec::Stationary => {}
        }
        s.push_str("\n[faults]\n");
        let _ = writeln!(s, "preset = {}", quote(&self.fault_preset));
        s.push_str("\n[matrix]\n");
        let tokens: Vec<String> = self
            .strategies
            .iter()
            .map(|&st| quote(perf::strategy_token(st)))
            .collect();
        let _ = writeln!(s, "strategies = [{}]", tokens.join(", "));
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let _ = writeln!(s, "seeds = [{}]", seeds.join(", "));
        let g = &self.gates;
        if g.min_fresh_fraction.is_some()
            || g.max_p95_latency_secs.is_some()
            || g.min_events_per_sec.is_some()
        {
            s.push_str("\n[gates]\n");
            if let Some(v) = g.min_fresh_fraction {
                let _ = writeln!(s, "min_fresh_fraction = {v}");
            }
            if let Some(v) = g.max_p95_latency_secs {
                let _ = writeln!(s, "max_p95_latency_secs = {v}");
            }
            if let Some(v) = g.min_events_per_sec {
                let _ = writeln!(s, "min_events_per_sec = {v}");
            }
        }
        s
    }

    fn from_document(doc: Document) -> Result<Self, ScenarioError> {
        let mut doc = doc;
        let schema = doc.require_u64("", "schema")?;
        if schema.0 != SCENARIO_SCHEMA {
            return Err(err(
                schema.1,
                format!(
                    "scenario schema {} unsupported (this build speaks {SCENARIO_SCHEMA})",
                    schema.0
                ),
            ));
        }
        let (name, name_line) = doc.require_str("", "name")?;
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        {
            return Err(err(
                name_line,
                format!("name {name:?} must be non-empty lowercase [a-z0-9-] (it names files)"),
            ));
        }
        let summary = doc.optional_str("", "summary")?.unwrap_or_default().0;

        let peers = doc.require_count("world", "peers", 2)?;
        let cache = doc.require_count("world", "cache", 1)?;
        if cache.0 >= peers.0 {
            return Err(err(
                cache.1,
                format!(
                    "cache ({}) must be below the number of foreign items ({})",
                    cache.0,
                    peers.0 - 1
                ),
            ));
        }
        let range_m = doc.require_positive("world", "range_m")?.0;
        let terrain_w_m = doc.require_positive("world", "terrain_w_m")?.0;
        let terrain_h_m = doc.require_positive("world", "terrain_h_m")?.0;
        let sim = doc.require_positive("world", "sim_mins")?;
        let warmup = doc.require_positive("world", "warmup_mins")?;
        if warmup.0 >= sim.0 {
            return Err(err(
                warmup.1,
                format!(
                    "warmup_mins ({}) must end before sim_mins ({}) does",
                    warmup.0, sim.0
                ),
            ));
        }
        let query_secs = doc.require_positive("world", "query_secs")?.0;
        let update_secs = doc.require_positive("world", "update_secs")?.0;
        let churn_secs = match doc.optional_f64("world", "churn_secs")? {
            Some((v, line)) => {
                if !(v.is_finite() && v > 0.0) {
                    return Err(err(line, format!("churn_secs must be positive, got {v}")));
                }
                Some(v)
            }
            None => None,
        };
        let workload = match doc.optional_str("world", "workload")? {
            Some((tok, line)) => {
                if tok != "cached-uniform" && tok != "single-item" {
                    return Err(err(
                        line,
                        format!("unknown workload {tok:?} (cached-uniform|single-item)"),
                    ));
                }
                tok
            }
            None => "cached-uniform".to_owned(),
        };
        let mix = match doc.optional_str("world", "mix")? {
            Some((tok, line)) => {
                cli::parse_mix(&tok).map_err(|msg| err(line, msg))?;
                tok
            }
            None => "sc".to_owned(),
        };
        let hardened = doc.optional_bool("world", "hardened")?.unwrap_or(false);
        let recovery = doc.optional_bool("world", "recovery")?.unwrap_or(false);
        let consistency_sample_secs = match doc.optional_f64("world", "consistency_sample_secs")? {
            Some((v, line)) => {
                if !(v.is_finite() && v > 0.0) {
                    return Err(err(
                        line,
                        format!("consistency_sample_secs must be positive, got {v}"),
                    ));
                }
                Some(v)
            }
            None => None,
        };

        let mobility = doc.parse_mobility()?;

        let fault_preset = match doc.optional_str("faults", "preset")? {
            Some((tok, line)) => {
                cli::parse_faults(&tok, SimDuration::from_mins(1)).map_err(|msg| err(line, msg))?;
                tok
            }
            None => "none".to_owned(),
        };

        let (strategy_tokens, strategies_line) = doc.require_str_array("matrix", "strategies")?;
        if strategy_tokens.is_empty() {
            return Err(err(strategies_line, "strategies must not be empty".into()));
        }
        let strategies = strategy_tokens
            .iter()
            .map(|t| cli::parse_strategy(t))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|msg| err(strategies_line, msg))?;
        let (seed_nums, seeds_line) = doc.require_num_array("matrix", "seeds")?;
        if seed_nums.is_empty() {
            return Err(err(seeds_line, "seeds must not be empty".into()));
        }
        let seeds = seed_nums
            .iter()
            .map(|&n| {
                if n >= 0.0 && n.fract() == 0.0 && n <= 9.007_199_254_740_992e15 {
                    Ok(n as u64)
                } else {
                    Err(err(
                        seeds_line,
                        format!("seed {n} is not a non-negative integer"),
                    ))
                }
            })
            .collect::<Result<Vec<_>, _>>()?;

        let gates = GateFloors {
            min_fresh_fraction: match doc.optional_f64("gates", "min_fresh_fraction")? {
                Some((v, line)) => {
                    if !(0.0..=1.0).contains(&v) {
                        return Err(err(
                            line,
                            format!("min_fresh_fraction must be in [0,1], got {v}"),
                        ));
                    }
                    Some(v)
                }
                None => None,
            },
            max_p95_latency_secs: match doc.optional_f64("gates", "max_p95_latency_secs")? {
                Some((v, line)) => {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(err(
                            line,
                            format!("max_p95_latency_secs must be positive, got {v}"),
                        ));
                    }
                    Some(v)
                }
                None => None,
            },
            min_events_per_sec: match doc.optional_f64("gates", "min_events_per_sec")? {
                Some((v, line)) => {
                    if !(v.is_finite() && v >= 0.0) {
                        return Err(err(
                            line,
                            format!("min_events_per_sec must be non-negative, got {v}"),
                        ));
                    }
                    Some(v)
                }
                None => None,
            },
        };

        doc.reject_unused()?;

        Ok(Scenario {
            name,
            summary,
            peers: peers.0,
            cache: cache.0,
            range_m,
            terrain_w_m,
            terrain_h_m,
            sim_secs: sim.0 * 60.0,
            warmup_secs: warmup.0 * 60.0,
            query_secs,
            update_secs,
            churn_secs,
            workload,
            mix,
            hardened,
            recovery,
            consistency_sample_secs,
            mobility,
            fault_preset,
            strategies,
            seeds,
            gates,
        })
    }
}

fn err(line: usize, msg: String) -> ScenarioError {
    ScenarioError { line, msg }
}

/// Quotes a string for the canonical TOML form (`\\` and `\"` escaped).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A raw parsed value with its source line.
#[derive(Debug, Clone, PartialEq)]
enum RawValue {
    Num(f64),
    Str(String),
    Bool(bool),
    NumArr(Vec<f64>),
    StrArr(Vec<String>),
}

impl RawValue {
    fn type_name(&self) -> &'static str {
        match self {
            RawValue::Num(_) => "number",
            RawValue::Str(_) => "string",
            RawValue::Bool(_) => "boolean",
            RawValue::NumArr(_) => "number array",
            RawValue::StrArr(_) => "string array",
        }
    }
}

/// The flat `(section, key) -> (value, line)` form of a scenario file.
#[derive(Debug)]
struct Document {
    /// Entries in file order; `used` marks keys a typed accessor read.
    entries: Vec<Entry>,
}

#[derive(Debug)]
struct Entry {
    section: String,
    key: String,
    value: RawValue,
    line: usize,
    used: bool,
}

const SECTIONS: [&str; 6] = ["", "world", "mobility", "faults", "matrix", "gates"];

/// Every key the format knows, per section. Checked at parse time so an
/// unknown key is reported on its own line even when required keys are
/// also missing.
const KNOWN_KEYS: [(&str, &[&str]); 6] = [
    ("", &["schema", "name", "summary"]),
    (
        "world",
        &[
            "peers",
            "cache",
            "range_m",
            "terrain_w_m",
            "terrain_h_m",
            "sim_mins",
            "warmup_mins",
            "query_secs",
            "update_secs",
            "churn_secs",
            "workload",
            "mix",
            "hardened",
            "recovery",
            "consistency_sample_secs",
        ],
    ),
    (
        "mobility",
        &[
            "model",
            "speed_min_mps",
            "speed_max_mps",
            "max_pause_secs",
            "epoch_secs",
            "block_m",
            "speed_mps",
        ],
    ),
    ("faults", &["preset"]),
    ("matrix", &["strategies", "seeds"]),
    (
        "gates",
        &[
            "min_fresh_fraction",
            "max_p95_latency_secs",
            "min_events_per_sec",
        ],
    ),
];

impl Document {
    fn parse(text: &str) -> Result<Document, ScenarioError> {
        let mut entries: Vec<Entry> = Vec::new();
        let mut section = String::new();
        for (i, raw_line) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw_line, lineno)?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(err(lineno, format!("unterminated section header {line:?}")));
                };
                let name = name.trim();
                if !SECTIONS.contains(&name) {
                    return Err(err(
                        lineno,
                        format!(
                            "unknown section [{name}] (expected one of [world] [mobility] [faults] [matrix] [gates])"
                        ),
                    ));
                }
                section = name.to_owned();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(err(
                    lineno,
                    format!("expected `key = value` or `[section]`, got {line:?}"),
                ));
            };
            let key = line[..eq].trim();
            if key.is_empty()
                || !key
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
            {
                return Err(err(lineno, format!("bad key {key:?}")));
            }
            let known = KNOWN_KEYS
                .iter()
                .find(|(s, _)| *s == section)
                .is_some_and(|(_, keys)| keys.contains(&key));
            if !known {
                return Err(err(
                    lineno,
                    format!("unknown key {key:?} in {}", Self::section_label(&section)),
                ));
            }
            let value = parse_value(line[eq + 1..].trim(), lineno)?;
            if entries.iter().any(|e| e.section == section && e.key == key) {
                return Err(err(
                    lineno,
                    format!("duplicate key {key:?} in section [{section}]"),
                ));
            }
            entries.push(Entry {
                section: section.clone(),
                key: key.to_owned(),
                value,
                line: lineno,
                used: false,
            });
        }
        Ok(Document { entries })
    }

    fn take(&mut self, section: &str, key: &str) -> Option<(&RawValue, usize)> {
        self.entries
            .iter_mut()
            .find(|e| e.section == section && e.key == key)
            .map(|e| {
                e.used = true;
                (&e.value, e.line)
            })
    }

    fn section_label(section: &str) -> String {
        if section.is_empty() {
            "the top of the file".to_owned()
        } else {
            format!("section [{section}]")
        }
    }

    fn require_f64(&mut self, section: &str, key: &str) -> Result<(f64, usize), ScenarioError> {
        match self.take(section, key) {
            Some((RawValue::Num(n), line)) => Ok((*n, line)),
            Some((other, line)) => Err(err(
                line,
                format!("{key} must be a number, got a {}", other.type_name()),
            )),
            None => Err(err(
                0,
                format!("missing key {key:?} in {}", Self::section_label(section)),
            )),
        }
    }

    fn require_positive(
        &mut self,
        section: &str,
        key: &str,
    ) -> Result<(f64, usize), ScenarioError> {
        let (v, line) = self.require_f64(section, key)?;
        if !(v.is_finite() && v > 0.0) {
            return Err(err(line, format!("{key} must be positive, got {v}")));
        }
        Ok((v, line))
    }

    fn require_count(
        &mut self,
        section: &str,
        key: &str,
        min: usize,
    ) -> Result<(usize, usize), ScenarioError> {
        let (v, line) = self.require_f64(section, key)?;
        if !(v.is_finite() && v >= min as f64 && v.fract() == 0.0 && v <= 1e12) {
            return Err(err(
                line,
                format!("{key} must be an integer >= {min}, got {v}"),
            ));
        }
        Ok((v as usize, line))
    }

    fn require_u64(&mut self, section: &str, key: &str) -> Result<(u64, usize), ScenarioError> {
        let (v, line) = self.require_f64(section, key)?;
        if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= 9.007_199_254_740_992e15) {
            return Err(err(
                line,
                format!("{key} must be a non-negative integer, got {v}"),
            ));
        }
        Ok((v as u64, line))
    }

    fn optional_f64(
        &mut self,
        section: &str,
        key: &str,
    ) -> Result<Option<(f64, usize)>, ScenarioError> {
        match self.take(section, key) {
            Some((RawValue::Num(n), line)) => Ok(Some((*n, line))),
            Some((other, line)) => Err(err(
                line,
                format!("{key} must be a number, got a {}", other.type_name()),
            )),
            None => Ok(None),
        }
    }

    fn require_str(&mut self, section: &str, key: &str) -> Result<(String, usize), ScenarioError> {
        match self.take(section, key) {
            Some((RawValue::Str(s), line)) => Ok((s.clone(), line)),
            Some((other, line)) => Err(err(
                line,
                format!("{key} must be a string, got a {}", other.type_name()),
            )),
            None => Err(err(
                0,
                format!("missing key {key:?} in {}", Self::section_label(section)),
            )),
        }
    }

    fn optional_str(
        &mut self,
        section: &str,
        key: &str,
    ) -> Result<Option<(String, usize)>, ScenarioError> {
        match self.take(section, key) {
            Some((RawValue::Str(s), line)) => Ok(Some((s.clone(), line))),
            Some((other, line)) => Err(err(
                line,
                format!("{key} must be a string, got a {}", other.type_name()),
            )),
            None => Ok(None),
        }
    }

    fn optional_bool(&mut self, section: &str, key: &str) -> Result<Option<bool>, ScenarioError> {
        match self.take(section, key) {
            Some((RawValue::Bool(b), _)) => Ok(Some(*b)),
            Some((other, line)) => Err(err(
                line,
                format!("{key} must be true or false, got a {}", other.type_name()),
            )),
            None => Ok(None),
        }
    }

    fn require_str_array(
        &mut self,
        section: &str,
        key: &str,
    ) -> Result<(Vec<String>, usize), ScenarioError> {
        match self.take(section, key) {
            Some((RawValue::StrArr(v), line)) => Ok((v.clone(), line)),
            Some((other, line)) => Err(err(
                line,
                format!("{key} must be a string array, got a {}", other.type_name()),
            )),
            None => Err(err(
                0,
                format!("missing key {key:?} in {}", Self::section_label(section)),
            )),
        }
    }

    fn require_num_array(
        &mut self,
        section: &str,
        key: &str,
    ) -> Result<(Vec<f64>, usize), ScenarioError> {
        match self.take(section, key) {
            Some((RawValue::NumArr(v), line)) => Ok((v.clone(), line)),
            Some((other, line)) => Err(err(
                line,
                format!("{key} must be a number array, got a {}", other.type_name()),
            )),
            None => Err(err(
                0,
                format!("missing key {key:?} in {}", Self::section_label(section)),
            )),
        }
    }

    fn parse_mobility(&mut self) -> Result<MobilitySpec, ScenarioError> {
        let (model, model_line) = self.require_str("mobility", "model")?;
        let positive = |doc: &mut Self, key: &str| -> Result<f64, ScenarioError> {
            doc.require_positive("mobility", key).map(|(v, _)| v)
        };
        let spec = match model.as_str() {
            "waypoint" => {
                let speed_min = positive(self, "speed_min_mps")?;
                let speed_max = positive(self, "speed_max_mps")?;
                if speed_min > speed_max {
                    return Err(err(
                        model_line,
                        format!(
                            "need speed_min_mps <= speed_max_mps, got {speed_min} > {speed_max}"
                        ),
                    ));
                }
                // A zero pause is legal (continuous movement): positive
                // is not required here, only non-negative and finite.
                let (max_pause_secs, pause_line) =
                    self.require_f64("mobility", "max_pause_secs")?;
                if !(max_pause_secs.is_finite() && max_pause_secs >= 0.0) {
                    return Err(err(
                        pause_line,
                        format!("max_pause_secs must be non-negative, got {max_pause_secs}"),
                    ));
                }
                MobilitySpec::Waypoint {
                    speed_min,
                    speed_max,
                    max_pause_secs,
                }
            }
            "walk" => {
                let speed_min = positive(self, "speed_min_mps")?;
                let speed_max = positive(self, "speed_max_mps")?;
                if speed_min > speed_max {
                    return Err(err(
                        model_line,
                        format!(
                            "need speed_min_mps <= speed_max_mps, got {speed_min} > {speed_max}"
                        ),
                    ));
                }
                let epoch_secs = positive(self, "epoch_secs")?;
                MobilitySpec::Walk {
                    speed_min,
                    speed_max,
                    epoch_secs,
                }
            }
            "manhattan" => MobilitySpec::Manhattan {
                block_m: positive(self, "block_m")?,
                speed_mps: positive(self, "speed_mps")?,
            },
            "stationary" => MobilitySpec::Stationary,
            other => {
                return Err(err(
                    model_line,
                    format!(
                        "unknown mobility model {other:?} (waypoint|walk|manhattan|stationary)"
                    ),
                ))
            }
        };
        Ok(spec)
    }

    /// A known key no typed accessor consumed belongs to a different
    /// configuration (e.g. `epoch_secs` under a `manhattan` model) —
    /// report the first by line.
    fn reject_unused(&self) -> Result<(), ScenarioError> {
        match self.entries.iter().find(|e| !e.used) {
            Some(e) => Err(err(
                e.line,
                format!(
                    "key {:?} does not apply in {} with this configuration",
                    e.key,
                    Self::section_label(&e.section)
                ),
            )),
            None => Ok(()),
        }
    }
}

/// Strips a trailing `# comment`, respecting `#` inside quoted strings.
fn strip_comment(line: &str, lineno: usize) -> Result<&str, ScenarioError> {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_str => escaped = true,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return Ok(&line[..i]),
            _ => {}
        }
    }
    if in_str {
        return Err(err(lineno, "unterminated string".into()));
    }
    Ok(line)
}

/// Parses one value: number, bool, string, or a flat array of numbers
/// or strings.
fn parse_value(text: &str, lineno: usize) -> Result<RawValue, ScenarioError> {
    if text.is_empty() {
        return Err(err(lineno, "missing value after `=`".into()));
    }
    if text == "true" {
        return Ok(RawValue::Bool(true));
    }
    if text == "false" {
        return Ok(RawValue::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err(err(lineno, format!("unterminated array {text:?}")));
        };
        let items = split_array_items(inner, lineno)?;
        if items.is_empty() {
            // An empty array's element type is ambiguous; every array
            // key in the format requires at least one element anyway.
            return Ok(RawValue::NumArr(Vec::new()));
        }
        if items[0].starts_with('"') {
            let strings = items
                .iter()
                .map(|item| parse_string(item, lineno))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(RawValue::StrArr(strings));
        }
        let nums = items
            .iter()
            .map(|item| parse_number(item, lineno))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(RawValue::NumArr(nums));
    }
    if text.starts_with('"') {
        return parse_string(text, lineno).map(RawValue::Str);
    }
    parse_number(text, lineno).map(RawValue::Num)
}

/// Splits `a, b, c` at top-level commas (commas inside strings kept).
fn split_array_items(inner: &str, lineno: usize) -> Result<Vec<String>, ScenarioError> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for ch in inner.chars() {
        if escaped {
            current.push(ch);
            escaped = false;
            continue;
        }
        match ch {
            '\\' if in_str => {
                current.push(ch);
                escaped = true;
            }
            '"' => {
                current.push(ch);
                in_str = !in_str;
            }
            ',' if !in_str => {
                items.push(current.trim().to_owned());
                current.clear();
            }
            c => current.push(c),
        }
    }
    if in_str {
        return Err(err(lineno, "unterminated string in array".into()));
    }
    let last = current.trim();
    if !last.is_empty() {
        items.push(last.to_owned());
    } else if !items.is_empty() {
        return Err(err(lineno, "trailing comma in array".into()));
    }
    if items.iter().any(String::is_empty) {
        return Err(err(lineno, "empty element in array".into()));
    }
    Ok(items)
}

fn parse_string(text: &str, lineno: usize) -> Result<String, ScenarioError> {
    let Some(body) = text.strip_prefix('"') else {
        return Err(err(
            lineno,
            format!("expected a quoted string, got {text:?}"),
        ));
    };
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    loop {
        match chars.next() {
            Some('"') => {
                let rest: &str = chars.as_str();
                if !rest.trim().is_empty() {
                    return Err(err(
                        lineno,
                        format!("unexpected trailing characters after string: {rest:?}"),
                    ));
                }
                return Ok(out);
            }
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    return Err(err(lineno, format!("unknown escape \\{other}")));
                }
                None => return Err(err(lineno, "unterminated string".into())),
            },
            Some(c) => out.push(c),
            None => return Err(err(lineno, "unterminated string".into())),
        }
    }
}

fn parse_number(text: &str, lineno: usize) -> Result<f64, ScenarioError> {
    let ok_charset = text
        .bytes()
        .all(|b| b.is_ascii_digit() || matches!(b, b'.' | b'-' | b'+' | b'e' | b'E' | b'_'));
    let cleaned = text.replace('_', "");
    let parsed = if ok_charset {
        cleaned.parse::<f64>().ok()
    } else {
        None
    };
    match parsed {
        Some(v) if v.is_finite() => Ok(v),
        _ => Err(err(lineno, format!("{text:?} is not a number"))),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A minimal valid scenario exercising every section.
    pub(crate) const MINIMAL: &str = r#"
schema = 1
name = "mini"
summary = "tiny test scenario"

[world]
peers = 8
cache = 3
range_m = 250
terrain_w_m = 500
terrain_h_m = 500
sim_mins = 5
warmup_mins = 1
query_secs = 20
update_secs = 120
churn_secs = 300
mix = "sc"

[mobility]
model = "manhattan"
block_m = 100
speed_mps = 8

[faults]
preset = "bursty"

[matrix]
strategies = ["rpcc", "push", "pull"]
seeds = [42, 43]

[gates]
min_fresh_fraction = 0.5
"#;

    #[test]
    fn minimal_scenario_parses_and_builds_a_valid_world() {
        let s = Scenario::parse(MINIMAL).expect("minimal scenario parses");
        assert_eq!(s.name, "mini");
        assert_eq!(s.peers, 8);
        assert_eq!(s.churn_secs, Some(300.0));
        assert_eq!(
            s.mobility,
            MobilitySpec::Manhattan {
                block_m: 100.0,
                speed_mps: 8.0
            }
        );
        assert_eq!(s.fault_preset, "bursty");
        assert_eq!(s.strategies.len(), 3);
        assert_eq!(s.seeds, vec![42, 43]);
        assert_eq!(s.gates.min_fresh_fraction, Some(0.5));
        for &strategy in &s.strategies {
            let cfg = s.world_config(strategy, 42);
            cfg.validate();
            assert_eq!(
                cfg.mobility,
                MobilityKind::Manhattan {
                    block: 100.0,
                    speed: 8.0
                }
            );
            assert_eq!(cfg.faults.label, "bursty");
        }
    }

    #[test]
    fn parse_serialize_parse_is_identity() {
        let s = Scenario::parse(MINIMAL).unwrap();
        let round = Scenario::parse(&s.to_toml()).expect("canonical form reparses");
        assert_eq!(round, s);
        // And serialisation is a fixed point.
        assert_eq!(round.to_toml(), s.to_toml());
    }

    #[test]
    fn errors_carry_the_offending_line() {
        // Line 3 (1-based) holds the bad key below.
        let text = "schema = 1\nname = \"x\"\nbogus_key = 7\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.msg.contains("bogus_key"), "{e}");

        let text = "schema = 1\nname = \"x\"\n[world]\npeers = \"many\"\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 4, "{e}");
        assert!(e.msg.contains("peers"), "{e}");

        let text = "schema = 1\nname = \"x\"\n[nowhere]\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 3, "{e}");

        let text = "schema = 2\nname = \"x\"\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 1, "{e}");
        assert!(e.msg.contains("schema"), "{e}");
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        let text = MINIMAL.replace(
            "summary = \"tiny test scenario\"",
            "summary = \"has # inside\" # and a real comment",
        );
        let s = Scenario::parse(&text).unwrap();
        assert_eq!(s.summary, "has # inside");
    }

    #[test]
    fn semantic_bounds_are_enforced() {
        for (needle, replacement) in [
            ("peers = 8", "peers = 1"),
            ("cache = 3", "cache = 8"),
            ("warmup_mins = 1", "warmup_mins = 9"),
            ("seeds = [42, 43]", "seeds = [-1]"),
            (
                "strategies = [\"rpcc\", \"push\", \"pull\"]",
                "strategies = [\"gossip\"]",
            ),
            ("preset = \"bursty\"", "preset = \"meteor\""),
            ("model = \"manhattan\"", "model = \"teleport\""),
            ("min_fresh_fraction = 0.5", "min_fresh_fraction = 1.5"),
        ] {
            let text = MINIMAL.replace(needle, replacement);
            assert!(
                Scenario::parse(&text).is_err(),
                "should reject {replacement:?}"
            );
        }
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let text = MINIMAL.replace("peers = 8", "peers = 8\npeers = 9");
        let e = Scenario::parse(&text).unwrap_err();
        assert!(e.msg.contains("duplicate"), "{e}");
    }
}
