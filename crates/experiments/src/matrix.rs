//! `MATRIX_*.json` cell snapshots, the fleet scorecard, and the
//! multi-axis regression comparator behind the `matrix` binary.
//!
//! The matrix runner sweeps scenario × strategy × seed (each triple is
//! one **cell**), freezes every cell into a schema-versioned
//! [`MatrixCell`], and folds the cells into a [`MatrixReport`] — the
//! fleet scorecard. Where PR 4's `perf` gate watches a single axis
//! (events/sec), [`compare_matrix`] gates **three** per cell:
//!
//! * **throughput** — events/sec below `baseline × (1 − wall_tolerance)`
//!   regresses. Wall-clock, hence its own (loose) tolerance; skipped for
//!   unprofiled cells.
//! * **fresh fraction** — below `baseline × (1 − tolerance)` regresses.
//!   Deterministic, so CI gates it tightly.
//! * **p95 latency** — above `baseline × (1 + tolerance)` regresses.
//!   Simulated time, also deterministic.
//!
//! Mismatched cell identities (peer count, simulated duration, warm-up,
//! or a baseline cell the measurement never ran) are an *error*, not a
//! verdict — numbers from different scenarios must never be compared.
//! Absolute per-scenario floors (`[gates]` in the scenario file) are
//! checked by [`gate_violations`], independent of any baseline.

use mp2p_rpcc::{RunReport, Strategy, World};
use mp2p_trace::json::{self, Value};
use mp2p_trace::BlameCause;

use crate::perf::{parse_strategy, strategy_token};
use crate::scenario::Scenario;
use crate::sweep::run_parallel;

/// Version tag written into every cell and report. Bump on layout
/// changes so old files are refused instead of misread.
pub const MATRIX_SCHEMA: u64 = 1;

/// One frozen matrix cell: the identity of the run plus its measured
/// consistency / latency / traffic / throughput figures.
///
/// Everything except the three wall-clock fields (`events`,
/// `wall_secs`, `events_per_sec`) is simulation-deterministic: the same
/// cell identity reproduces the same numbers bit for bit on any
/// machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Scenario name the cell belongs to.
    pub scenario: String,
    /// Strategy token (`rpcc`, `push`, `pull`, `push-ap`).
    pub strategy: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Peer count (identity: must match for comparison).
    pub peers: u64,
    /// Simulated duration in milliseconds (identity).
    pub sim_ms: u64,
    /// Warm-up offset in milliseconds (identity).
    pub warmup_ms: u64,
    /// Transmissions per simulated minute.
    pub traffic_per_min: f64,
    /// MAC-level transmissions (post-warmup).
    pub transmissions: u64,
    /// Bytes on the air (post-warmup).
    pub bytes: u64,
    /// Queries served post-warmup.
    pub queries_served: u64,
    /// Fraction of queries abandoned.
    pub failure_rate: f64,
    /// Mean query latency (simulated seconds).
    pub mean_latency_secs: f64,
    /// 95th-percentile query latency (simulated seconds; gated).
    pub p95_latency_secs: f64,
    /// Fraction of served answers at the master version (gated).
    pub fresh_fraction: f64,
    /// Queries answered with a superseded version.
    pub stale_served: u64,
    /// Label of the most frequent stale-serve blame cause, `none` when
    /// nothing stale was served or the observatory was off.
    pub dominant_blame: String,
    /// World events handled (0 when the cell ran unprofiled).
    pub events: u64,
    /// Wall-clock seconds of the event loop (0 when unprofiled).
    pub wall_secs: f64,
    /// Event-loop throughput (gated; 0 when unprofiled).
    pub events_per_sec: f64,
}

impl MatrixCell {
    /// `scenario/strategy/s<seed>` — the cell's display and file key.
    pub fn key(&self) -> String {
        format!("{}/{}/s{}", self.scenario, self.strategy, self.seed)
    }

    /// Freezes one finished run into a cell. `report` must come from
    /// the world that `(scenario, strategy, seed)` describes.
    pub fn from_report(
        scenario: &Scenario,
        strategy: Strategy,
        seed: u64,
        report: &RunReport,
    ) -> Self {
        let dominant_blame = report
            .consistency
            .filter(|c| c.blamed_total() > 0)
            .map(|c| {
                let top = BlameCause::ALL
                    .iter()
                    .copied()
                    // max_by_key takes the last maximum; reversing keeps
                    // ties on the higher-priority (earlier) cause.
                    .rev()
                    .max_by_key(|cause| c.blame[cause.index()])
                    .expect("ALL is non-empty");
                top.label().to_owned()
            })
            .unwrap_or_else(|| "none".to_owned());
        MatrixCell {
            scenario: scenario.name.clone(),
            strategy: strategy_token(strategy).to_owned(),
            seed,
            peers: scenario.peers as u64,
            sim_ms: secs_to_ms(scenario.sim_secs),
            warmup_ms: secs_to_ms(scenario.warmup_secs),
            traffic_per_min: report.traffic_per_minute(),
            transmissions: report.traffic.transmissions(),
            bytes: report.traffic.bytes(),
            queries_served: report.queries_served(),
            failure_rate: report.failure_rate(),
            mean_latency_secs: report.mean_latency_secs(),
            p95_latency_secs: report.latency.percentile(0.95).as_secs_f64(),
            fresh_fraction: report.audit.fresh_fraction(),
            stale_served: report.audit.stale_served(),
            dominant_blame,
            events: report.perf.as_ref().map_or(0, |p| p.events()),
            wall_secs: report.perf.as_ref().map_or(0.0, |p| p.wall_secs()),
            events_per_sec: report.perf.as_ref().map_or(0.0, |p| p.events_per_sec()),
        }
    }

    /// Serialises the cell as one JSON object, `matrix_schema` first.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"matrix_schema\":{MATRIX_SCHEMA},\"scenario\":{},\"strategy\":{},\"seed\":{},\"peers\":{},\"sim_ms\":{},\"warmup_ms\":{}",
            json::escape(&self.scenario),
            json::escape(&self.strategy),
            self.seed,
            self.peers,
            self.sim_ms,
            self.warmup_ms,
        );
        let _ = write!(
            s,
            ",\"traffic_per_min\":{},\"transmissions\":{},\"bytes\":{},\"queries_served\":{},\"failure_rate\":{}",
            self.traffic_per_min,
            self.transmissions,
            self.bytes,
            self.queries_served,
            self.failure_rate,
        );
        let _ = write!(
            s,
            ",\"mean_latency_secs\":{},\"p95_latency_secs\":{},\"fresh_fraction\":{},\"stale_served\":{},\"dominant_blame\":{}",
            self.mean_latency_secs,
            self.p95_latency_secs,
            self.fresh_fraction,
            self.stale_served,
            json::escape(&self.dominant_blame),
        );
        let _ = write!(
            s,
            ",\"events\":{},\"wall_secs\":{},\"events_per_sec\":{}}}",
            self.events, self.wall_secs, self.events_per_sec,
        );
        s
    }

    /// Parses a cell back, refusing unknown schema versions and any
    /// structural mismatch with a descriptive error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).ok_or("matrix cell is not valid JSON")?;
        Self::from_value(&v)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let schema = v
            .get("matrix_schema")
            .and_then(Value::as_u64)
            .ok_or("matrix cell has no numeric matrix_schema field")?;
        if schema != MATRIX_SCHEMA {
            return Err(format!(
                "matrix schema {schema} unsupported (this build speaks {MATRIX_SCHEMA})"
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        let f64_field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let strategy = str_field("strategy")?;
        if parse_strategy(&strategy).is_none() {
            return Err(format!("unknown strategy token {strategy:?}"));
        }
        Ok(MatrixCell {
            scenario: str_field("scenario")?,
            strategy,
            seed: u64_field("seed")?,
            peers: u64_field("peers")?,
            sim_ms: u64_field("sim_ms")?,
            warmup_ms: u64_field("warmup_ms")?,
            traffic_per_min: f64_field("traffic_per_min")?,
            transmissions: u64_field("transmissions")?,
            bytes: u64_field("bytes")?,
            queries_served: u64_field("queries_served")?,
            failure_rate: f64_field("failure_rate")?,
            mean_latency_secs: f64_field("mean_latency_secs")?,
            p95_latency_secs: f64_field("p95_latency_secs")?,
            fresh_fraction: f64_field("fresh_fraction")?,
            stale_served: u64_field("stale_served")?,
            dominant_blame: str_field("dominant_blame")?,
            events: u64_field("events")?,
            wall_secs: f64_field("wall_secs")?,
            events_per_sec: f64_field("events_per_sec")?,
        })
    }
}

fn secs_to_ms(secs: f64) -> u64 {
    (secs * 1000.0).round() as u64
}

/// The fleet scorecard: every cell of one matrix sweep, in sweep order
/// (scenarios sorted by name, then file strategy order, then seeds).
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport {
    /// All swept cells.
    pub cells: Vec<MatrixCell>,
}

impl MatrixReport {
    /// Looks a cell up by its identity triple.
    pub fn cell(&self, scenario: &str, strategy: &str, seed: u64) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.strategy == strategy && c.seed == seed)
    }

    /// Serialises the report: `{"matrix_schema":1,"cells":[...]}`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 + 512 * self.cells.len());
        s.push_str(&format!("{{\"matrix_schema\":{MATRIX_SCHEMA},\"cells\":["));
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&cell.to_json());
        }
        s.push_str("]}");
        s
    }

    /// Parses a report back, refusing unknown schemata.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).ok_or("matrix report is not valid JSON")?;
        let schema = v
            .get("matrix_schema")
            .and_then(Value::as_u64)
            .ok_or("matrix report has no numeric matrix_schema field")?;
        if schema != MATRIX_SCHEMA {
            return Err(format!(
                "matrix schema {schema} unsupported (this build speaks {MATRIX_SCHEMA})"
            ));
        }
        let Some(Value::Arr(items)) = v.get("cells") else {
            return Err("missing cells array".to_owned());
        };
        let cells = items
            .iter()
            .map(MatrixCell::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MatrixReport { cells })
    }
}

/// Runs one matrix cell and freezes it. With `profile` the world's
/// profiler is enabled, filling the wall-clock fields — strictly
/// observational, so the deterministic fields are identical either way.
pub fn run_cell(scenario: &Scenario, strategy: Strategy, seed: u64, profile: bool) -> MatrixCell {
    let mut world = World::new(scenario.world_config(strategy, seed));
    if profile {
        world.enable_profiling();
    }
    let report = world.run();
    MatrixCell::from_report(scenario, strategy, seed, &report)
}

/// Sweeps every scenario × strategy × seed cell in parallel (the same
/// executor the figure sweeps use) and folds the cells into a report.
pub fn run_matrix(scenarios: &[Scenario], profile: bool) -> MatrixReport {
    let mut jobs: Vec<(&Scenario, Strategy, u64)> = Vec::new();
    for scenario in scenarios {
        for &strategy in &scenario.strategies {
            for &seed in &scenario.seeds {
                jobs.push((scenario, strategy, seed));
            }
        }
    }
    let cells = run_parallel(&jobs, |&(scenario, strategy, seed)| {
        run_cell(scenario, strategy, seed, profile)
    });
    MatrixReport { cells }
}

/// The three baseline-gated axes of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateAxis {
    /// Event-loop events/sec (wall-clock).
    Throughput,
    /// Served fresh fraction (deterministic).
    FreshFraction,
    /// 95th-percentile query latency (deterministic).
    Latency,
}

impl GateAxis {
    /// Human label used in diff tables.
    pub fn label(self) -> &'static str {
        match self {
            GateAxis::Throughput => "events/sec",
            GateAxis::FreshFraction => "fresh-fraction",
            GateAxis::Latency => "p95-latency",
        }
    }
}

/// One cell that fell outside its allowed band on one axis.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRegression {
    /// `scenario/strategy/s<seed>` of the offending cell.
    pub cell: String,
    /// The axis that regressed.
    pub axis: GateAxis,
    /// Baseline value (or the absolute floor for gate violations).
    pub baseline: f64,
    /// Freshly measured value.
    pub measured: f64,
    /// The value the measurement had to stay within.
    pub limit: f64,
}

impl std::fmt::Display for CellRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {:.4} vs baseline {:.4} (limit {:.4})",
            self.cell,
            self.axis.label(),
            self.measured,
            self.baseline,
            self.limit
        )
    }
}

/// Compares a fresh sweep against a committed baseline, cell by cell,
/// on all three gated axes. Returns every regression found (empty =
/// pass).
///
/// Errs — without a verdict — when any baseline cell is missing from
/// the measurement or describes a different scenario (peer count,
/// simulated duration or warm-up differ): numbers from different
/// workloads must never be compared. Cells the measurement has beyond
/// the baseline are ignored (new scenarios are not regressions).
///
/// `tolerance` bounds the two deterministic axes (fresh fraction may
/// drop by at most that fraction; p95 latency may grow by at most that
/// fraction). `wall_tolerance` separately bounds the wall-clock
/// throughput axis, which is noisy across machines; the axis is skipped
/// when either side ran unprofiled (events/sec of 0).
pub fn compare_matrix(
    baseline: &MatrixReport,
    measured: &MatrixReport,
    tolerance: f64,
    wall_tolerance: f64,
) -> Result<Vec<CellRegression>, String> {
    for (name, t) in [("tolerance", tolerance), ("wall-tolerance", wall_tolerance)] {
        if !(0.0..1.0).contains(&t) {
            return Err(format!("{name} must be in [0, 1), got {t}"));
        }
    }
    let mut regressions = Vec::new();
    for base in &baseline.cells {
        let Some(fresh) = measured.cell(&base.scenario, &base.strategy, base.seed) else {
            return Err(format!(
                "baseline cell {} missing from the measured sweep",
                base.key()
            ));
        };
        for (what, b, m) in [
            ("peers", base.peers, fresh.peers),
            ("sim_ms", base.sim_ms, fresh.sim_ms),
            ("warmup_ms", base.warmup_ms, fresh.warmup_ms),
        ] {
            if b != m {
                return Err(format!("cell {} {what} differs: {b} vs {m}", base.key()));
            }
        }
        let fresh_floor = base.fresh_fraction * (1.0 - tolerance);
        if fresh.fresh_fraction < fresh_floor {
            regressions.push(CellRegression {
                cell: base.key(),
                axis: GateAxis::FreshFraction,
                baseline: base.fresh_fraction,
                measured: fresh.fresh_fraction,
                limit: fresh_floor,
            });
        }
        let latency_ceiling = base.p95_latency_secs * (1.0 + tolerance);
        if fresh.p95_latency_secs > latency_ceiling {
            regressions.push(CellRegression {
                cell: base.key(),
                axis: GateAxis::Latency,
                baseline: base.p95_latency_secs,
                measured: fresh.p95_latency_secs,
                limit: latency_ceiling,
            });
        }
        if base.events_per_sec > 0.0 && fresh.events_per_sec > 0.0 {
            let eps_floor = base.events_per_sec * (1.0 - wall_tolerance);
            if fresh.events_per_sec < eps_floor {
                regressions.push(CellRegression {
                    cell: base.key(),
                    axis: GateAxis::Throughput,
                    baseline: base.events_per_sec,
                    measured: fresh.events_per_sec,
                    limit: eps_floor,
                });
            }
        }
    }
    Ok(regressions)
}

/// Checks every cell against its scenario's absolute `[gates]` floors
/// (no baseline involved). Cells of scenarios absent from `scenarios`
/// are skipped. Returned entries reuse [`CellRegression`] with
/// `baseline` set to the floor itself.
pub fn gate_violations(scenarios: &[Scenario], report: &MatrixReport) -> Vec<CellRegression> {
    let mut violations = Vec::new();
    for cell in &report.cells {
        let Some(scenario) = scenarios.iter().find(|s| s.name == cell.scenario) else {
            continue;
        };
        let g = &scenario.gates;
        if let Some(floor) = g.min_fresh_fraction {
            if cell.fresh_fraction < floor {
                violations.push(CellRegression {
                    cell: cell.key(),
                    axis: GateAxis::FreshFraction,
                    baseline: floor,
                    measured: cell.fresh_fraction,
                    limit: floor,
                });
            }
        }
        if let Some(ceiling) = g.max_p95_latency_secs {
            if cell.p95_latency_secs > ceiling {
                violations.push(CellRegression {
                    cell: cell.key(),
                    axis: GateAxis::Latency,
                    baseline: ceiling,
                    measured: cell.p95_latency_secs,
                    limit: ceiling,
                });
            }
        }
        if let Some(floor) = g.min_events_per_sec {
            if cell.events_per_sec > 0.0 && cell.events_per_sec < floor {
                violations.push(CellRegression {
                    cell: cell.key(),
                    axis: GateAxis::Throughput,
                    baseline: floor,
                    measured: cell.events_per_sec,
                    limit: floor,
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> MatrixCell {
        MatrixCell {
            scenario: "mini".into(),
            strategy: "rpcc".into(),
            seed: 42,
            peers: 8,
            sim_ms: 300_000,
            warmup_ms: 60_000,
            traffic_per_min: 120.5,
            transmissions: 482,
            bytes: 96_400,
            queries_served: 95,
            failure_rate: 0.05,
            mean_latency_secs: 0.21,
            p95_latency_secs: 0.8,
            fresh_fraction: 0.93,
            stale_served: 7,
            dominant_blame: "invalidate_lost".into(),
            events: 10_000,
            wall_secs: 0.05,
            events_per_sec: 200_000.0,
        }
    }

    fn sample_report() -> MatrixReport {
        let mut push = sample_cell();
        push.strategy = "push".into();
        push.fresh_fraction = 0.99;
        MatrixReport {
            cells: vec![sample_cell(), push],
        }
    }

    #[test]
    fn cell_and_report_json_roundtrip() {
        let cell = sample_cell();
        let json = cell.to_json();
        assert!(json.starts_with("{\"matrix_schema\":1,\"scenario\":\"mini\""));
        assert!(mp2p_trace::json::is_valid(&json));
        assert_eq!(MatrixCell::from_json(&json).expect("roundtrip"), cell);

        let report = sample_report();
        let back = MatrixReport::from_json(&report.to_json()).expect("roundtrip");
        assert_eq!(back, report);
    }

    #[test]
    fn wrong_schema_and_garbage_are_refused() {
        let future =
            sample_cell()
                .to_json()
                .replacen("\"matrix_schema\":1", "\"matrix_schema\":9", 1);
        assert!(MatrixCell::from_json(&future)
            .unwrap_err()
            .contains("schema 9"));
        assert!(MatrixCell::from_json("nope").is_err());
        assert!(MatrixReport::from_json("{}").is_err());
    }

    #[test]
    fn each_axis_trips_the_gate_independently() {
        let base = sample_report();

        // Fresh fraction drops below the floor.
        let mut worse = sample_report();
        worse.cells[0].fresh_fraction = 0.5;
        let regs = compare_matrix(&base, &worse, 0.02, 0.5).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].axis, GateAxis::FreshFraction);
        assert_eq!(regs[0].cell, "mini/rpcc/s42");

        // p95 latency grows past the ceiling.
        let mut worse = sample_report();
        worse.cells[1].p95_latency_secs = 2.0;
        let regs = compare_matrix(&base, &worse, 0.02, 0.5).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].axis, GateAxis::Latency);
        assert_eq!(regs[0].cell, "mini/push/s42");

        // Throughput halves (outside even the loose wall band).
        let mut worse = sample_report();
        worse.cells[0].events_per_sec = 50_000.0;
        let regs = compare_matrix(&base, &worse, 0.02, 0.5).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].axis, GateAxis::Throughput);

        // And an identical sweep passes clean.
        assert!(compare_matrix(&base, &base, 0.02, 0.5).unwrap().is_empty());
    }

    #[test]
    fn unprofiled_cells_skip_the_wall_clock_axis() {
        let base = sample_report();
        let mut unprofiled = sample_report();
        for cell in &mut unprofiled.cells {
            cell.events = 0;
            cell.wall_secs = 0.0;
            cell.events_per_sec = 0.0;
        }
        assert!(compare_matrix(&base, &unprofiled, 0.02, 0.5)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn identity_mismatch_is_an_error_not_a_verdict() {
        let base = sample_report();
        let mut other = sample_report();
        other.cells[0].peers = 9;
        assert!(compare_matrix(&base, &other, 0.02, 0.5).is_err());

        // A baseline cell the measurement never ran is an error too.
        let mut short = sample_report();
        short.cells.pop();
        assert!(compare_matrix(&base, &short, 0.02, 0.5).is_err());

        // But extra measured cells (a new scenario) are fine.
        let mut extra = sample_report();
        let mut cell = sample_cell();
        cell.scenario = "new-town".into();
        extra.cells.push(cell);
        assert!(compare_matrix(&base, &extra, 0.02, 0.5).unwrap().is_empty());

        assert!(compare_matrix(&base, &base, 1.5, 0.5).is_err());
    }

    #[test]
    fn scenario_floors_flag_violating_cells() {
        use crate::scenario::Scenario;
        let mut scenario = Scenario::parse(crate::scenario::tests::MINIMAL).unwrap();
        scenario.gates.min_fresh_fraction = Some(0.95);
        let report = sample_report(); // rpcc cell sits at 0.93
        let violations = gate_violations(&[scenario], &report);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].axis, GateAxis::FreshFraction);
        assert_eq!(violations[0].cell, "mini/rpcc/s42");
    }
}
