//! End-to-end root-cause acceptance: on chaos runs with the provenance
//! engine and the observatory both on, `explain_stale_serves` must
//! produce a causal chain for **100%** of stale serves, and the multiset
//! of terminal causes must equal the report's blame partition *exactly*
//! (the `crosscheck_explain` CI gate). Also pins the orphan-span
//! surfacing the analyzer relies on for truncated journals.

use mp2p_experiments::{
    analyze_file, analyze_journal, crosscheck_explain, explain_stale_serves, render_explain,
    render_health, ConsistencyReportTotals,
};
use mp2p_net::FaultPlan;
use mp2p_rpcc::{ObservatoryConfig, ProvenanceConfig, RunReport, Strategy, World, WorldConfig};
use mp2p_sim::SimDuration;
use mp2p_trace::JsonlSink;

/// One chaos run with observatory + provenance on, journaled at schema 4.
/// Returns the run's report and the journal path (caller removes it).
fn chaos_run(preset: &str, seed: u64) -> (RunReport, std::path::PathBuf) {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.strategy = Strategy::Rpcc;
    cfg.sim_time = SimDuration::from_mins(8);
    cfg.warmup = SimDuration::from_mins(2);
    cfg.faults = FaultPlan::preset(preset, cfg.sim_time).expect("known preset");
    cfg.observatory = ObservatoryConfig::full(SimDuration::from_secs(30));
    cfg.provenance = ProvenanceConfig::full();
    let warmup = cfg.warmup;
    let path = std::env::temp_dir().join(format!(
        "mp2p-explain-{preset}-{seed}-{}.jsonl",
        std::process::id()
    ));
    let mut world = World::new(cfg);
    world.set_tracer(Box::new(
        JsonlSink::create_v4_with_warmup(&path, warmup).expect("temp journal"),
    ));
    let (report, _tracer) = world.run_traced();
    (report, path)
}

/// The acceptance check both presets share.
fn assert_every_stale_serve_explained(preset: &str) {
    let (report, path) = chaos_run(preset, 42);
    let analysis = analyze_file(&path).expect("journal parses");
    std::fs::remove_file(&path).ok();

    assert!(
        analysis.provenance.has_frames(),
        "{preset}: provenance-on journal must carry frame records"
    );
    let incidents = explain_stale_serves(&analysis);
    assert!(
        report.audit.stale_served() > 0,
        "{preset}: chaos fixture produced no stale serves; the gate is vacuous"
    );
    assert_eq!(
        incidents.len() as u64,
        report.audit.stale_served(),
        "{preset}: one incident per stale serve"
    );
    for incident in &incidents {
        assert_eq!(
            incident.chain.len(),
            4,
            "{preset}: query {} chain must walk update -> lineage -> hazard -> repair",
            incident.query
        );
        assert!(
            incident.chain.iter().all(|step| !step.is_empty()),
            "{preset}: query {} has an empty chain step",
            incident.query
        );
    }

    // The CI gate: terminal causes partition exactly like the report's
    // blame counters, and the totals agree.
    let totals = ConsistencyReportTotals::from_report_json(&report.to_json())
        .expect("report carries a consistency section");
    let mismatches = crosscheck_explain(&incidents, &totals);
    assert!(mismatches.is_empty(), "{preset}: {mismatches:?}");

    // Rendering smoke: every incident block appears, the health board
    // names the stale-serving nodes.
    let rendered = render_explain(&incidents, None);
    for incident in &incidents {
        assert!(
            rendered.contains(&format!("#{} ", incident.query)),
            "{preset}: query {} missing from the rendering",
            incident.query
        );
    }
    let health = render_health(&analysis);
    assert!(health.contains("Per-node health scoreboard"));
    assert!(!health.contains("no frame provenance"));
    let top_contributor = analysis
        .provenance
        .node_health()
        .iter()
        .max_by_key(|(_, h)| h.staleness_ms)
        .map(|(node, _)| node.to_string())
        .expect("health board is non-empty");
    assert!(health.contains(&top_contributor));
}

#[test]
fn every_stale_serve_gets_a_chain_under_bursty_loss() {
    assert_every_stale_serve_explained("bursty");
}

#[test]
fn every_stale_serve_gets_a_chain_under_partition() {
    assert_every_stale_serve_explained("partition");
}

#[test]
fn crosscheck_explain_catches_a_dropped_incident() {
    let (report, path) = chaos_run("bursty", 42);
    let analysis = analyze_file(&path).expect("journal parses");
    std::fs::remove_file(&path).ok();
    let mut incidents = explain_stale_serves(&analysis);
    let totals = ConsistencyReportTotals::from_report_json(&report.to_json())
        .expect("report carries a consistency section");
    incidents.pop();
    let mismatches = crosscheck_explain(&incidents, &totals);
    assert!(
        !mismatches.is_empty(),
        "dropping one incident must trip the gate"
    );
}

#[test]
fn truncated_journal_surfaces_orphan_spans() {
    // Strip every QueryIssued line from a real journal (a truncation a
    // rotating collector could produce): the assembler must keep parsing
    // and surface each span-tagged message as an orphan count the
    // analyze binary turns into exit 1.
    let (_report, path) = chaos_run("bursty", 42);
    let text = std::fs::read_to_string(&path).expect("read journal back");
    std::fs::remove_file(&path).ok();
    let truncated: String = text
        .lines()
        .filter(|line| !line.contains("\"ev\":\"query_issued\""))
        .map(|line| format!("{line}\n"))
        .collect();
    let analysis = analyze_journal(truncated.as_bytes()).expect("truncated journal still parses");
    assert_eq!(analysis.spans.len(), 0, "no issues means no spans");
    assert!(
        analysis.orphan_tagged > 0,
        "span-tagged messages without an issue must be counted as orphans"
    );
    // The orphan count is exactly the number of span-tagged message
    // lines left in the journal (the assembler tags only sends and
    // deliveries; phase/outcome records without a span are dropped).
    let tagged = truncated
        .lines()
        .filter(|l| {
            (l.contains("\"ev\":\"msg_send\"") || l.contains("\"ev\":\"msg_deliver\""))
                && l.contains("\"span\":")
        })
        .count() as u64;
    assert_eq!(analysis.orphan_tagged, tagged);
}
