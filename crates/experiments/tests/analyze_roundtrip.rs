//! End-to-end observability roundtrip: a traced 50-node run's journal,
//! re-analyzed offline, must reconstruct a span for 100% of answered
//! queries and reproduce the run's own counters *exactly*. This is the
//! contract that makes the flight recorder trustworthy: the trace is not
//! a lossy approximation of the run, it IS the run.

use mp2p_experiments::{analyze_file, crosscheck, ReportTotals};
use mp2p_rpcc::{Strategy, World, WorldConfig};
use mp2p_sim::SimDuration;
use mp2p_trace::span::SpanOutcome;
use mp2p_trace::{JsonlSink, JOURNAL_KINDS_V3};

#[test]
fn traced_run_spans_match_the_report_exactly() {
    // The paper's 50-node scenario, shortened for test wall-clock but
    // long enough past warm-up for hundreds of measured queries.
    let mut cfg = WorldConfig::paper_default(2024);
    cfg.strategy = Strategy::Rpcc;
    cfg.sim_time = SimDuration::from_mins(8);
    cfg.warmup = SimDuration::from_mins(2);
    assert_eq!(cfg.n_peers, 50, "the acceptance scenario is 50 nodes");
    let warmup = cfg.warmup;

    let path = std::env::temp_dir().join(format!(
        "mp2p-analyze-roundtrip-{}.jsonl",
        std::process::id()
    ));
    let mut world = World::new(cfg);
    world.set_tracer(Box::new(
        JsonlSink::create_v3_with_warmup(&path, warmup).expect("temp journal"),
    ));
    let (report, tracer) = world.run_traced();
    let jsonl = tracer
        .as_any()
        .downcast_ref::<JsonlSink>()
        .expect("jsonl sink installed above");
    assert!(jsonl.io_error().is_none(), "journal hit an I/O error");

    let analysis = analyze_file(&path).expect("journal parses");
    std::fs::remove_file(&path).ok();

    assert_eq!(analysis.header.warmup_ms, warmup.as_millis());
    // A v3 journal stamps the frozen recovery-schema vocabulary, not
    // however many kinds this build happens to know.
    assert_eq!(analysis.header.kinds as usize, JOURNAL_KINDS_V3);
    assert_eq!(analysis.events, jsonl.records(), "no event line lost");
    assert_eq!(
        analysis.orphan_tagged, 0,
        "every span-tagged message belongs to a known query"
    );

    // 100% span reconstruction: every answered query has a span whose
    // terminal is Served.
    let answered = analysis.answered_spans().count() as u64;
    let totals = analysis.measured_totals();
    assert!(totals.served > 100, "run too short to be meaningful");
    assert!(
        answered >= totals.served,
        "answered spans ({answered}) must cover at least the measured set"
    );

    // Span-derived totals equal the report's counters exactly.
    let report_totals = ReportTotals {
        queries_issued: report.queries_issued,
        queries_served: report.queries_served(),
        queries_failed: report.queries_failed,
        served_by: report.served_by,
    };
    let mismatches = crosscheck(&totals, &report_totals);
    assert!(mismatches.is_empty(), "{mismatches:?}");

    // ... and the counters parsed back out of the report's JSON agree
    // with the in-memory report (the analyze binary's --report path).
    let parsed = ReportTotals::from_report_json(&report.to_json()).expect("report JSON parses");
    assert_eq!(parsed, report_totals);

    // The latency distribution itself — not just the count — matches
    // bucket for bucket.
    assert_eq!(totals.latency, report.latency);
    for (level, span_side) in totals.latency_by_level.iter().enumerate() {
        assert_eq!(
            span_side, &report.latency_by_level[level],
            "latency histogram diverges for level index {level}"
        );
    }

    // Issued partitions exactly into served + failed; still-open spans
    // are censored on both sides (the world drops them at end of run).
    assert_eq!(totals.issued, totals.served + totals.failed);

    // Relay answers exist in a default RPCC run, so the served-by split
    // is non-trivial and cache_hit_ratio is meaningful.
    assert!(totals.served_by.iter().sum::<u64>() == totals.served);
    let ratio = totals.cache_hit_ratio();
    assert!((0.0..=1.0).contains(&ratio));
    assert_eq!(ratio, report.cache_hit_ratio());

    // Spot-check span shape: any span that was served with phases has a
    // critical path whose segments tile issue → answer exactly.
    let mut checked = 0;
    for span in analysis.spans.iter().filter(|s| !s.phases.is_empty()) {
        if let SpanOutcome::Served { at, .. } = span.outcome {
            let path = span.critical_path();
            assert_eq!(
                path.first().unwrap().start,
                span.issued,
                "span {}",
                span.query
            );
            assert_eq!(path.last().unwrap().end, at, "span {}", span.query);
            for pair in path.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap in span {}", span.query);
            }
            checked += 1;
        }
    }
    assert!(checked > 0, "no multi-phase served spans; test is vacuous");
}
