//! Corpus-level tests for the scenario format: the committed
//! `scenarios/` files must load, round-trip through the canonical
//! serialiser, and build valid worlds for every cell; the parser must
//! report line-accurate errors and survive arbitrary bytes without
//! panicking (the `journal_fuzz.rs` discipline applied to TOML input).

use std::path::{Path, PathBuf};

use mp2p_experiments::scenario::{MobilitySpec, Scenario};
use mp2p_rpcc::MobilityKind;
use proptest::prelude::*;

/// The committed corpus directory at the workspace root.
fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn corpus() -> Vec<Scenario> {
    Scenario::load_dir(&corpus_dir()).expect("committed corpus loads")
}

#[test]
fn corpus_is_complete_and_sorted() {
    let scenarios = corpus();
    let names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "load_dir returns scenarios sorted by name");
    for required in [
        "manhattan-downtown",
        "highway-convoy",
        "stadium-flash-crowd",
        "rural-sparse-partition",
        "paper-default",
    ] {
        assert!(
            names.contains(&required),
            "corpus is missing {required:?} (has {names:?})"
        );
    }
    assert!(scenarios.len() >= 5);
}

#[test]
fn every_corpus_file_round_trips_through_the_canonical_form() {
    for s in corpus() {
        let canonical = s.to_toml();
        let back = Scenario::parse(&canonical)
            .unwrap_or_else(|e| panic!("{}: canonical form fails to reparse: {e}", s.name));
        assert_eq!(back, s, "{}: parse(to_toml(s)) != s", s.name);
        assert_eq!(
            back.to_toml(),
            canonical,
            "{}: serialisation is not a fixed point",
            s.name
        );
    }
}

#[test]
fn every_corpus_cell_builds_a_valid_world() {
    for s in corpus() {
        for &strategy in &s.strategies {
            for &seed in &s.seeds {
                // validate() panics on an inconsistent config.
                s.world_config(strategy, seed).validate();
            }
        }
        assert!(!s.strategies.is_empty() && !s.seeds.is_empty());
    }
}

#[test]
fn manhattan_downtown_wires_the_manhattan_model() {
    let scenarios = corpus();
    let downtown = scenarios
        .iter()
        .find(|s| s.name == "manhattan-downtown")
        .expect("manhattan-downtown is committed");
    assert_eq!(
        downtown.mobility,
        MobilitySpec::Manhattan {
            block_m: 150.0,
            speed_mps: 8.0
        }
    );
    let cfg = downtown.world_config(downtown.strategies[0], downtown.seeds[0]);
    assert_eq!(
        cfg.mobility,
        MobilityKind::Manhattan {
            block: 150.0,
            speed: 8.0
        },
        "the scenario must select the street-grid model in the world config"
    );
}

#[test]
fn corrupting_a_committed_file_reports_the_exact_line() {
    let path = corpus_dir().join("manhattan-downtown.toml");
    let text = std::fs::read_to_string(&path).expect("committed file reads");
    // Find a known key and break its value in place.
    let victim_line = text
        .lines()
        .position(|l| l.trim_start().starts_with("peers ="))
        .expect("manhattan-downtown sets peers")
        + 1;
    let broken = text.replacen("peers = 50", "peers = \"fifty\"", 1);
    assert_ne!(broken, text, "the needle must exist to corrupt");
    let e = Scenario::parse(&broken).expect_err("a string peer count is rejected");
    assert_eq!(e.line, victim_line, "{e}");
    assert!(e.msg.contains("peers"), "{e}");
}

proptest! {
    /// Arbitrary bytes (lossily decoded) never panic the parser —
    /// whatever comes back is a value or a line-accurate error.
    #[test]
    fn arbitrary_bytes_never_panic(input in proptest::collection::vec(0u8..=255, 0..2048)) {
        let text = String::from_utf8_lossy(&input);
        match Scenario::parse(&text) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.line <= text.lines().count(), "error line out of range: {e}");
            }
        }
    }

    /// Flipping one byte of a valid scenario never panics, and any
    /// resulting error still points inside the file.
    #[test]
    fn single_byte_corruption_never_panics(
        pos_frac in 0.0f64..1.0,
        replacement in 0u8..=255,
    ) {
        let scenarios = corpus();
        let canonical = scenarios[0].to_toml();
        let mut bytes = canonical.into_bytes();
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] = replacement;
        let text = String::from_utf8_lossy(&bytes);
        match Scenario::parse(&text) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.line <= text.lines().count(), "error line out of range: {e}");
            }
        }
    }

    /// Truncating a valid scenario at any byte offset never panics.
    #[test]
    fn truncation_never_panics(cut_frac in 0.0f64..1.0) {
        let scenarios = corpus();
        let canonical = scenarios[0].to_toml();
        let cut = ((canonical.len() as f64) * cut_frac) as usize;
        // Cut on a char boundary (the canonical form is ASCII anyway).
        let cut = (0..=cut).rev().find(|&i| canonical.is_char_boundary(i)).unwrap_or(0);
        let _ = Scenario::parse(&canonical[..cut]);
    }
}
