//! Determinism and gate-trip tests for the scenario matrix.
//!
//! Three obligations from the scenario-matrix design:
//!
//! 1. The same cell run twice produces byte-identical
//!    [`RunReport::to_json`] output — and the matrix path produces the
//!    same cell as a direct run frozen by hand.
//! 2. The committed `paper-default` scenario reproduces the
//!    `WorldConfig::paper_default` world **byte for byte**: the scenario
//!    layer can never silently drift the paper reproduction.
//! 3. An injected regression on any single axis of any single cell makes
//!    the `matrix` binary exit non-zero, naming the offending axis;
//!    mismatched cell identities exit 2 instead of producing a verdict.
//!
//! [`RunReport::to_json`]: mp2p_rpcc::RunReport::to_json

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use mp2p_experiments::matrix::{run_cell, run_matrix, MatrixCell, MatrixReport};
use mp2p_experiments::scenario::Scenario;
use mp2p_rpcc::{World, WorldConfig};
use mp2p_sim::SimDuration;

/// A fast single-cell scenario used by the in-process determinism tests
/// and (written to a temp dir) by the binary gate tests.
const TINY: &str = r#"
schema = 1
name = "tiny-gate"
summary = "single fast cell for determinism and gate tests"

[world]
peers = 8
cache = 3
range_m = 250
terrain_w_m = 500
terrain_h_m = 500
sim_mins = 3
warmup_mins = 0.5
query_secs = 10
update_secs = 60
consistency_sample_secs = 30

[mobility]
model = "manhattan"
block_m = 100
speed_mps = 8

[matrix]
strategies = ["rpcc"]
seeds = [42]
"#;

#[test]
fn the_same_cell_twice_is_byte_identical() {
    let s = Scenario::parse(TINY).unwrap();
    let strategy = s.strategies[0];
    let first = s.run_cell_report(strategy, 42).to_json();
    let second = s.run_cell_report(strategy, 42).to_json();
    assert_eq!(first, second, "same-cell reruns must not drift");
}

#[test]
fn the_matrix_path_equals_the_direct_run_path() {
    let s = Scenario::parse(TINY).unwrap();
    let strategy = s.strategies[0];
    // The matrix executor (unprofiled, so every field is deterministic)...
    let report = run_matrix(std::slice::from_ref(&s), false);
    let via_matrix = report.cell("tiny-gate", "rpcc", 42).expect("cell swept");
    // ...must freeze exactly the cell a direct run freezes by hand.
    let direct = s.run_cell_report(strategy, 42);
    let by_hand = MatrixCell::from_report(&s, strategy, 42, &direct);
    assert_eq!(via_matrix, &by_hand);
    // And a profiled run only fills the wall-clock fields.
    let mut profiled = run_cell(&s, strategy, 42, true);
    assert!(profiled.events > 0 && profiled.events_per_sec > 0.0);
    profiled.events = 0;
    profiled.wall_secs = 0.0;
    profiled.events_per_sec = 0.0;
    assert_eq!(
        &profiled, via_matrix,
        "profiling must be strictly observational"
    );
}

/// The golden anchor: `scenarios/paper-default.toml` transcribes Table 1,
/// so running its cell through the scenario layer must reproduce the
/// directly-constructed `WorldConfig::paper_default` world byte for byte.
#[test]
fn paper_default_scenario_reproduces_the_direct_run() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/paper-default.toml");
    let s = Scenario::load(&path).expect("committed golden scenario loads");
    let strategy = s.strategies[0];
    let seed = s.seeds[0];

    let mut direct_cfg = WorldConfig::paper_default(seed);
    direct_cfg.strategy = strategy;
    direct_cfg.sim_time = SimDuration::from_mins(12);
    direct_cfg.warmup = SimDuration::from_mins(3);

    let via_scenario = s.run_cell_report(strategy, seed).to_json();
    let direct = World::new(direct_cfg).run().to_json();
    assert_eq!(
        via_scenario, direct,
        "the scenario layer drifted the paper reproduction"
    );
}

// ---- matrix binary: injected regressions must trip the gate ----------

struct TempMatrixDir {
    root: PathBuf,
}

impl TempMatrixDir {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("mp2p-matrix-gate-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("scenarios")).expect("temp dir creates");
        std::fs::write(root.join("scenarios/tiny-gate.toml"), TINY).expect("scenario writes");
        TempMatrixDir { root }
    }

    fn scenarios(&self) -> PathBuf {
        self.root.join("scenarios")
    }

    fn out(&self) -> PathBuf {
        self.root.join("out")
    }

    fn baseline(&self) -> PathBuf {
        self.root.join("baseline.json")
    }
}

impl Drop for TempMatrixDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn run_matrix_binary(dir: &TempMatrixDir, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_matrix"))
        .arg("--scenarios")
        .arg(dir.scenarios())
        .arg("--out")
        .arg(dir.out())
        .args(extra)
        .output()
        .expect("matrix binary spawns")
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn injected_regressions_trip_the_gate_per_axis() {
    let dir = TempMatrixDir::new("axes");

    // Sweep once to produce the baseline.
    let baseline_str = dir.baseline().display().to_string();
    let seeded = run_matrix_binary(&dir, &["--json", &baseline_str]);
    assert!(
        seeded.status.success(),
        "baseline sweep failed: {}\n{}",
        stdout_of(&seeded),
        String::from_utf8_lossy(&seeded.stderr)
    );
    let baseline_text = std::fs::read_to_string(dir.baseline()).unwrap();
    let baseline = MatrixReport::from_json(&baseline_text).expect("baseline parses");
    assert_eq!(baseline.cells.len(), 1);
    let cell = &baseline.cells[0];
    assert!(
        cell.p95_latency_secs > 0.0,
        "the tiny cell must produce a non-zero p95 for the latency axis to be testable"
    );
    assert!(cell.events_per_sec > 0.0, "the binary profiles its cells");

    // A clean re-run against its own baseline passes (deterministic axes
    // are exact; the wall-clock axis gets a generous band).
    let clean = run_matrix_binary(
        &dir,
        &["--baseline", &baseline_str, "--wall-tolerance", "0.95"],
    );
    assert!(
        clean.status.success(),
        "identical sweep flagged as regression:\n{}",
        stdout_of(&clean)
    );

    // Tamper one axis at a time; each must exit 1 and name the axis.
    type Tamper = fn(&mut MatrixCell);
    let axes: [(&str, Tamper); 3] = [
        ("fresh-fraction", |c| {
            c.fresh_fraction = c.fresh_fraction * 2.0 + 0.1;
        }),
        ("p95-latency", |c| c.p95_latency_secs *= 0.5),
        ("events/sec", |c| c.events_per_sec *= 100.0),
    ];
    for (axis, tamper) in &axes {
        let mut doctored = baseline.clone();
        tamper(&mut doctored.cells[0]);
        std::fs::write(dir.baseline(), doctored.to_json()).unwrap();
        let tripped = run_matrix_binary(
            &dir,
            &["--baseline", &baseline_str, "--wall-tolerance", "0.95"],
        );
        assert_eq!(
            tripped.status.code(),
            Some(1),
            "{axis}: a regressed baseline must exit 1\n{}",
            stdout_of(&tripped)
        );
        assert!(
            stdout_of(&tripped).contains(axis),
            "{axis}: the diff table must name the offending axis\n{}",
            stdout_of(&tripped)
        );
    }

    // A baseline describing a *different* scenario is an error (exit 2),
    // never a verdict.
    let mut alien = baseline.clone();
    alien.cells[0].peers += 1;
    std::fs::write(dir.baseline(), alien.to_json()).unwrap();
    let refused = run_matrix_binary(&dir, &["--baseline", &baseline_str]);
    assert_eq!(
        refused.status.code(),
        Some(2),
        "identity mismatch must exit 2\n{}",
        String::from_utf8_lossy(&refused.stderr)
    );
}

#[test]
fn gate_floor_violations_trip_the_sweep_without_a_baseline() {
    let dir = TempMatrixDir::new("floors");
    // Demand an impossible latency ceiling (1 ns) and a perfect fresh
    // fraction; at least one floor must trip the sweep on its own.
    let gated =
        format!("{TINY}\n[gates]\nmin_fresh_fraction = 1.0\nmax_p95_latency_secs = 0.000000001\n");
    std::fs::write(dir.scenarios().join("tiny-gate.toml"), gated).unwrap();
    let tripped = run_matrix_binary(&dir, &[]);
    assert_eq!(
        tripped.status.code(),
        Some(1),
        "an unmet [gates] floor must exit 1\n{}",
        stdout_of(&tripped)
    );
    assert!(stdout_of(&tripped).contains("GATE FLOOR VIOLATIONS"));
}
