//! Mobile-market scenario (the paper's second motivating example):
//! "a mobile store system consists of several mobile booths that store
//! the information (e.g. price, sum, etc) of the commodities … booths
//! having the data item cache of the same commodity will need to exchange
//! the deal information with each other."
//!
//! ```text
//! cargo run --release --example mobile_market
//! ```
//!
//! Characteristics modelled here: *mixed consistency needs* — a shopper
//! browsing catalogue entries is happy with weak consistency, price
//! comparisons want Δ-bounded data, but closing a deal demands the exact
//! current price. The same RPCC overlay serves all three mixes at once
//! (Section 4.4); the run shows how the cost and the achieved staleness
//! scale with the strictness of the mix.

use mp2p::rpcc::{ConsistencyLevel, LevelMix, MobilityKind, Strategy, World, WorldConfig};
use mp2p::sim::SimDuration;

fn market_config(mix: LevelMix, seed: u64) -> WorldConfig {
    let mut config = WorldConfig::paper_default(seed);
    config.n_peers = 40; // booths + roaming shoppers
    config.sim_time = SimDuration::from_mins(40);
    config.warmup = SimDuration::from_mins(5);
    config.strategy = Strategy::Rpcc;
    config.level_mix = mix;
    // Prices change every few minutes; browsing is frequent.
    config.i_update = SimDuration::from_mins(3);
    config.i_query = SimDuration::from_secs(15);
    // A market: slow strolling, long pauses at stalls.
    config.mobility = MobilityKind::Waypoint {
        speed_min: 0.3,
        speed_max: 1.5,
        max_pause: SimDuration::from_secs(60),
    };
    config
}

fn main() {
    println!("Mobile market: 40 booths/shoppers, price updates every ~3 min\n");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>12}",
        "consistency mix", "tx/min", "latency", "stale %", "max stale"
    );

    let mixes: [(&str, LevelMix); 4] = [
        ("browsing (all weak)", LevelMix::weak_only()),
        ("comparing (all Δ)", LevelMix::delta_only()),
        ("dealing (all strong)", LevelMix::strong_only()),
        ("real market (2W:2D:1S)", LevelMix::new(2.0, 2.0, 1.0)),
    ];

    for (name, mix) in mixes {
        let report = World::new(market_config(mix, 11)).run();
        println!(
            "{:<28} {:>10.0} {:>9.3}s {:>9.2}% {:>10.1}s",
            name,
            report.traffic_per_minute(),
            report.mean_latency_secs(),
            (1.0 - report.audit.fresh_fraction()) * 100.0,
            report.audit.max_staleness().as_secs_f64()
        );
    }

    // Zoom into the realistic mixed workload: the per-level split shows
    // each class of request got the guarantee it asked for, at its own
    // price.
    let report = World::new(market_config(LevelMix::new(2.0, 2.0, 1.0), 11)).run();
    println!("\nPer-level service inside the mixed run:");
    for level in ConsistencyLevel::ALL {
        let audit = &report.audit_by_level[level.index()];
        let latency = &report.latency_by_level[level.index()];
        println!(
            "  {:>2}: {:>5} answers, mean latency {:>7.3}s, {:>6.2}% stale, worst lag {} versions",
            level,
            audit.served(),
            latency.mean_secs(),
            (1.0 - audit.fresh_fraction()) * 100.0,
            audit.max_version_lag()
        );
    }
    println!(
        "\nOne overlay, three guarantees: weak reads ride the cache, Δ reads ride the TTP \
         lease,\nstrong reads poll the {} relay items the coefficients elected.",
        report.relay_gauge.mean().round()
    );

    // "The booths having the data item cache of the same commodity will
    // need to exchange the deal information with each other" — booths
    // closing deals WRITE the shared records. The replica-write extension
    // (future work §6.3) serialises those writes through each commodity's
    // source booth.
    let mut cfg = market_config(LevelMix::new(2.0, 2.0, 1.0), 11);
    cfg.i_write = Some(SimDuration::from_mins(4)); // each booth closes a deal every ~4 min
    let report = World::new(cfg).run();
    println!("\nWith booths writing deal records (replica-write extension):");
    println!(
        "  writes: {} acknowledged / {} issued, mean write latency {:.3}s",
        report.writes_completed(),
        report.writes_issued,
        report.write_latency.mean_secs()
    );
    println!(
        "  read traffic rises to {:.0} tx/min as the faster-changing records force \
         re-validations",
        report.traffic_per_minute()
    );
}
