//! Quickstart: run one RPCC scenario and read its report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a scaled-down version of the paper's Table 1 scenario (20 peers,
//! 10 simulated minutes), runs RPCC with a hybrid consistency mix, and
//! walks through the interesting parts of the [`mp2p::rpcc::RunReport`].

use mp2p::metrics::MessageClass;
use mp2p::rpcc::{ConsistencyLevel, LevelMix, Strategy, World, WorldConfig};
use mp2p::sim::SimDuration;

fn main() {
    // Start from the test-sized scenario and customise it.
    let mut config = WorldConfig::small_test(42);
    config.strategy = Strategy::Rpcc;
    config.level_mix = LevelMix::hybrid(); // 1/3 weak, 1/3 Δ, 1/3 strong
    config.sim_time = SimDuration::from_mins(15);
    config.warmup = SimDuration::from_mins(3);

    println!(
        "Running RPCC: {} peers, {} simulated…",
        config.n_peers, config.sim_time
    );
    let report = World::new(config).run();

    println!("\n— query service —");
    println!("  issued:        {}", report.queries_issued);
    println!("  served:        {}", report.queries_served());
    println!(
        "  failed:        {} ({:.1}%)",
        report.queries_failed,
        report.failure_rate() * 100.0
    );
    println!("  mean latency:  {:.3}s", report.mean_latency_secs());
    println!(
        "  p95 latency:   {:.3}s",
        report.latency.percentile(0.95).as_secs_f64()
    );

    println!("\n— per consistency level —");
    for level in ConsistencyLevel::ALL {
        let lat = &report.latency_by_level[level.index()];
        let audit = &report.audit_by_level[level.index()];
        println!(
            "  {}: {} served, mean {:.3}s, {:.1}% stale answers",
            level,
            audit.served(),
            lat.mean_secs(),
            (1.0 - audit.fresh_fraction()) * 100.0
        );
    }

    println!("\n— network cost —");
    println!("  transmissions/min: {:.0}", report.traffic_per_minute());
    for class in [
        MessageClass::Invalidation,
        MessageClass::Update,
        MessageClass::Poll,
        MessageClass::PollAckA,
        MessageClass::PollAckB,
        MessageClass::RouteControl,
    ] {
        println!(
            "  {:>14}: {}",
            class.label(),
            report.traffic.by_class(class)
        );
    }

    println!("\n— relay overlay —");
    println!(
        "  relay items (mean over samples): {:.1}",
        report.relay_gauge.mean()
    );
    println!(
        "  candidate nodes (mean):          {:.1}",
        report.candidate_gauge.mean()
    );
    println!(
        "  energy used: {:.1} J across all nodes",
        report.energy_used_mj / 1_000.0
    );
}
