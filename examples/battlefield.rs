//! Battlefield scenario (the paper's first motivating example):
//! "a group of soldiers, each with a micro-data center … update the
//! information (e.g. geographic information or enemy information) in
//! their data centers momentarily, and can share with each other the new
//! information and commands."
//!
//! ```text
//! cargo run --release --example battlefield
//! ```
//!
//! Characteristics modelled here: *fast-changing* source data (updates
//! every 30 s), *strong consistency demanded* (orders and enemy positions
//! must be current), squad-like movement at a brisk walk, and radios that
//! occasionally drop (terrain, jamming → 2% frame loss, frequent short
//! disconnections). The run compares RPCC(SC) against the pull baseline —
//! the natural competitor when strong freshness is required.

use mp2p::net::LinkModel;
use mp2p::rpcc::{LevelMix, MobilityKind, RunReport, Strategy, World, WorldConfig};
use mp2p::sim::SimDuration;

fn battlefield_config(strategy: Strategy, seed: u64) -> WorldConfig {
    let mut config = WorldConfig::paper_default(seed);
    config.n_peers = 30; // one platoon
    config.terrain = mp2p::mobility::Terrain::new(1_000.0, 1_000.0);
    config.sim_time = SimDuration::from_mins(40);
    config.warmup = SimDuration::from_mins(5);
    config.strategy = strategy;
    config.level_mix = LevelMix::strong_only();
    // Enemy information changes fast, and everyone checks often.
    config.i_update = SimDuration::from_secs(30);
    config.i_query = SimDuration::from_secs(10);
    // Soldiers on foot, short halts.
    config.mobility = MobilityKind::Waypoint {
        speed_min: 0.8,
        speed_max: 2.2,
        max_pause: SimDuration::from_secs(15),
    };
    // Contested spectrum: some loss, radios cycling for silence discipline.
    config.link = LinkModel::new(
        2_000_000,
        SimDuration::from_millis(1),
        SimDuration::from_millis(4),
        0.02,
    );
    config.i_switch = Some(SimDuration::from_mins(4));
    config.switch_off_mean = SimDuration::from_secs(20);
    config
}

fn describe(name: &str, report: &RunReport) {
    println!("\n=== {name}");
    println!("  transmissions/min: {:>8.0}", report.traffic_per_minute());
    println!("  mean latency:      {:>8.3}s", report.mean_latency_secs());
    println!(
        "  served / failed:   {:>6} / {}",
        report.queries_served(),
        report.queries_failed
    );
    println!(
        "  stale answers:     {:>7.2}%  (max staleness {:.1}s)",
        (1.0 - report.audit.fresh_fraction()) * 100.0,
        report.audit.max_staleness().as_secs_f64()
    );
    println!(
        "  energy used:       {:>8.1} J",
        report.energy_used_mj / 1_000.0
    );
}

fn main() {
    println!("Battlefield information sharing: 30 soldiers, 1 km², SC queries every 10 s");

    let rpcc = World::new(battlefield_config(Strategy::Rpcc, 7)).run();
    let pull = World::new(battlefield_config(Strategy::Pull, 7)).run();

    describe("RPCC (strong consistency)", &rpcc);
    describe("Simple pull baseline", &pull);

    let saved = 100.0 * (1.0 - rpcc.traffic_per_minute() / pull.traffic_per_minute());
    println!(
        "\nRPCC moved {:.0}% less traffic than flood-polling for the same strong-consistency \
         workload\n(relay overlay held {:.1} relay items on average).",
        saved,
        rpcc.relay_gauge.mean()
    );
}
