//! Internet-gateway scenario (the paper's third motivating example):
//! mobile users outside an access point's radio range reach the Internet
//! "via other peer nodes within the coverage range" — a single well-known
//! source whose content everyone consumes.
//!
//! ```text
//! cargo run --release --example internet_gateway
//! ```
//!
//! This is exactly the Fig. 9 single-item topology: one source (the
//! gateway-connected peer mirroring a feed), every other peer caching it.
//! The run sweeps RPCC's invalidation TTL to show the paper's headline
//! trade-off: a small TTL behaves like pull (few relays, long polls), a
//! large TTL behaves like push (relays everywhere, silence between
//! reports).

use mp2p::rpcc::{LevelMix, Strategy, WorkloadMode, World, WorldConfig};
use mp2p::sim::SimDuration;

fn gateway_config(strategy: Strategy, ttl: u8, seed: u64) -> WorldConfig {
    let mut config = WorldConfig::paper_default(seed);
    config.workload = WorkloadMode::SingleItem;
    config.strategy = strategy;
    config.level_mix = LevelMix::strong_only();
    config.sim_time = SimDuration::from_mins(40);
    config.warmup = SimDuration::from_mins(5);
    config.proto.invalidation_ttl = ttl;
    // A feed that refreshes every minute, checked constantly.
    config.i_update = SimDuration::from_mins(1);
    config.i_query = SimDuration::from_secs(20);
    config
}

fn main() {
    println!("Internet gateway feed: one source, 49 cache peers, SC reads\n");

    let pull = World::new(gateway_config(Strategy::Pull, 3, 23)).run();
    let push = World::new(gateway_config(Strategy::Push, 3, 23)).run();
    println!("Baselines:");
    println!(
        "  pull  — {:>7.0} tx/min, {:>8.3}s latency",
        pull.traffic_per_minute(),
        pull.mean_latency_secs()
    );
    println!(
        "  push  — {:>7.0} tx/min, {:>8.3}s latency",
        push.traffic_per_minute(),
        push.mean_latency_secs()
    );

    println!("\nRPCC(SC) as the invalidation TTL grows:");
    println!(
        "{:>4} {:>10} {:>10} {:>12} {:>10}",
        "TTL", "tx/min", "latency", "relay items", "failures"
    );
    for ttl in 1..=7 {
        let report = World::new(gateway_config(Strategy::Rpcc, ttl, 23)).run();
        println!(
            "{:>4} {:>10.0} {:>9.3}s {:>12.1} {:>9.1}%",
            ttl,
            report.traffic_per_minute(),
            report.mean_latency_secs(),
            report.relay_gauge.mean(),
            report.failure_rate() * 100.0
        );
    }

    println!(
        "\nSmall TTL ⇒ few relays ⇒ pull-like flood-polling; large TTL ⇒ relays everywhere ⇒ \
         push-like quiet\n(the paper's Fig. 9 trade-off, Section 5.3)."
    );
}
