//! System-level tests of the future-work extensions (paper Section 6):
//! adaptive push/pull frequency and relay-population admission control.

use mp2p::rpcc::{LevelMix, RunReport, Strategy, World, WorldConfig};
use mp2p::sim::SimDuration;

fn base(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.n_peers = 25;
    cfg.terrain = mp2p::mobility::Terrain::new(900.0, 900.0);
    cfg.c_num = 6;
    cfg.sim_time = SimDuration::from_mins(25);
    cfg.warmup = SimDuration::from_mins(5);
    cfg.strategy = Strategy::Rpcc;
    cfg.level_mix = LevelMix::delta_only();
    cfg
}

fn run(cfg: WorldConfig) -> RunReport {
    World::new(cfg).run()
}

#[test]
fn adaptive_mode_cuts_traffic_when_updates_are_rare() {
    // Items that update every 15 minutes don't need 2-minute reports or
    // 4-minute Δ re-validations; the adaptive rules should discover that.
    // The discovery needs observations (a source learns its gap only
    // after two updates), so this test runs a longer window.
    let mut fixed = base(1);
    fixed.sim_time = SimDuration::from_mins(75);
    fixed.warmup = SimDuration::from_mins(15);
    fixed.i_update = SimDuration::from_mins(15);
    let mut adaptive = fixed.clone();
    adaptive.proto.adaptive = true;
    let fixed = run(fixed);
    let adaptive = run(adaptive);
    assert!(
        adaptive.traffic_per_minute() < fixed.traffic_per_minute(),
        "adaptive must beat fixed under rare updates: {:.0} vs {:.0} tx/min",
        adaptive.traffic_per_minute(),
        fixed.traffic_per_minute()
    );
    // And it must not wreck staleness: Δ answers can be older (longer
    // leases on quiet items), but version lag stays bounded.
    assert!(adaptive.audit.max_version_lag() <= fixed.audit.max_version_lag() + 2);
}

#[test]
fn adaptive_mode_reports_faster_under_hot_updates() {
    // With updates every 30 s, the adaptive source reports on the update
    // timescale (clamped at TTN/span = 30 s), shrinking SC staleness.
    let mut fixed = base(2);
    fixed.level_mix = LevelMix::strong_only();
    fixed.i_update = SimDuration::from_secs(30);
    let mut adaptive = fixed.clone();
    adaptive.proto.adaptive = true;
    let fixed = run(fixed);
    let adaptive = run(adaptive);
    assert!(
        adaptive.audit.max_staleness() <= fixed.audit.max_staleness(),
        "faster reports must not worsen SC staleness: {} vs {}",
        adaptive.audit.max_staleness(),
        fixed.audit.max_staleness()
    );
}

#[test]
fn relay_cap_bounds_the_overlay() {
    let mut uncapped = base(3);
    uncapped.level_mix = LevelMix::strong_only();
    let mut capped = uncapped.clone();
    capped.proto.max_relays_per_item = Some(1);
    let uncapped = run(uncapped);
    let capped = run(capped);
    assert!(
        capped.relay_gauge.mean() < uncapped.relay_gauge.mean(),
        "a cap of 1 relay/item must shrink the overlay: {:.1} vs {:.1}",
        capped.relay_gauge.mean(),
        uncapped.relay_gauge.mean()
    );
    // The capped system still works — queries still served.
    assert!(capped.audit.served() > 0);
    assert!(
        capped.failure_rate() < 0.5,
        "capped relay overlay must still serve most queries, failed {:.1}%",
        capped.failure_rate() * 100.0
    );
}

#[test]
fn relay_cap_trades_update_push_for_poll_traffic() {
    use mp2p::metrics::MessageClass;
    let mut uncapped = base(4);
    uncapped.level_mix = LevelMix::strong_only();
    let mut capped = uncapped.clone();
    capped.proto.max_relays_per_item = Some(1);
    let uncapped = run(uncapped);
    let capped = run(capped);
    // Fewer relays ⇒ fewer UPDATE pushes from sources…
    assert!(
        capped.traffic.by_class(MessageClass::Update)
            <= uncapped.traffic.by_class(MessageClass::Update),
        "capping relays cannot increase UPDATE pushes"
    );
    // …but pollers have fewer nearby answerers, so polls don't shrink.
    assert!(
        capped.traffic.by_class(MessageClass::Poll) * 10
            >= uncapped.traffic.by_class(MessageClass::Poll) * 8,
        "poll traffic must not collapse when relays are scarce"
    );
}

#[test]
fn extensions_compose_and_stay_deterministic() {
    let mut cfg = base(5);
    cfg.proto.adaptive = true;
    cfg.proto.max_relays_per_item = Some(3);
    let a = run(cfg.clone());
    let b = run(cfg);
    assert_eq!(a.traffic.transmissions(), b.traffic.transmissions());
    assert_eq!(a.audit.served(), b.audit.served());
    assert!(a.audit.served() > 0);
}
