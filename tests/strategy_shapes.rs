//! The paper's qualitative results as executable assertions, at reduced
//! scale: who wins on traffic, who wins on latency, and how the curves
//! move (Figs. 7–9 of the paper).

use mp2p::rpcc::{LevelMix, RunReport, Strategy, WorkloadMode, World, WorldConfig};
use mp2p::sim::SimDuration;

/// A mid-sized scenario: big enough for multi-hop structure, small enough
/// for debug-mode CI.
fn base(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.n_peers = 30;
    cfg.terrain = mp2p::mobility::Terrain::new(1_100.0, 1_100.0);
    cfg.c_num = 6;
    cfg.sim_time = SimDuration::from_mins(20);
    cfg.warmup = SimDuration::from_mins(5);
    cfg
}

fn run_with(strategy: Strategy, mix: LevelMix, seed: u64) -> RunReport {
    let mut cfg = base(seed);
    cfg.strategy = strategy;
    cfg.level_mix = mix;
    World::new(cfg).run()
}

#[test]
fn fig7_pull_generates_the_most_traffic() {
    let pull = run_with(Strategy::Pull, LevelMix::strong_only(), 42);
    let push = run_with(Strategy::Push, LevelMix::strong_only(), 42);
    let sc = run_with(Strategy::Rpcc, LevelMix::strong_only(), 42);
    assert!(
        pull.traffic_per_minute() > push.traffic_per_minute(),
        "pull ({:.0}) must out-traffic push ({:.0})",
        pull.traffic_per_minute(),
        push.traffic_per_minute()
    );
    assert!(
        pull.traffic_per_minute() > sc.traffic_per_minute(),
        "pull ({:.0}) must out-traffic RPCC(SC) ({:.0}) — 'still saves more messages than \
         the pure pull strategy'",
        pull.traffic_per_minute(),
        sc.traffic_per_minute()
    );
}

#[test]
fn fig7_weaker_levels_cost_less() {
    let sc = run_with(Strategy::Rpcc, LevelMix::strong_only(), 7);
    let dc = run_with(Strategy::Rpcc, LevelMix::delta_only(), 7);
    let wc = run_with(Strategy::Rpcc, LevelMix::weak_only(), 7);
    assert!(
        sc.traffic_per_minute() > dc.traffic_per_minute(),
        "SC ({:.0}) costs more than DC ({:.0})",
        sc.traffic_per_minute(),
        dc.traffic_per_minute()
    );
    assert!(
        dc.traffic_per_minute() > wc.traffic_per_minute(),
        "DC ({:.0}) costs more than WC ({:.0})",
        dc.traffic_per_minute(),
        wc.traffic_per_minute()
    );
}

#[test]
fn fig7b_longer_query_intervals_shrink_pull_traffic() {
    let mut fast = base(3);
    fast.strategy = Strategy::Pull;
    fast.i_query = SimDuration::from_secs(10);
    let mut slow = base(3);
    slow.strategy = Strategy::Pull;
    slow.i_query = SimDuration::from_secs(60);
    let fast = World::new(fast).run();
    let slow = World::new(slow).run();
    assert!(
        fast.traffic_per_minute() > 2.0 * slow.traffic_per_minute(),
        "pull traffic is query-driven: {:.0} vs {:.0}",
        fast.traffic_per_minute(),
        slow.traffic_per_minute()
    );
}

#[test]
fn fig7c_push_traffic_grows_with_cache_number_pull_does_not() {
    let runs = |c_num: usize, strategy: Strategy| {
        let mut cfg = base(4);
        cfg.c_num = c_num;
        cfg.strategy = strategy;
        World::new(cfg).run().traffic_per_minute()
    };
    let push_small = runs(2, Strategy::Push);
    let push_large = runs(12, Strategy::Push);
    assert!(
        push_large > push_small,
        "push traffic must grow with cache number: {push_small:.0} -> {push_large:.0}"
    );
    let pull_small = runs(2, Strategy::Pull);
    let pull_large = runs(12, Strategy::Pull);
    let drift = (pull_large - pull_small).abs() / pull_small;
    assert!(
        drift < 0.25,
        "pull traffic is query-driven, so cache size must barely matter: \
         {pull_small:.0} vs {pull_large:.0}"
    );
}

#[test]
fn fig8_push_latency_is_on_the_invalidation_scale() {
    let push = run_with(Strategy::Push, LevelMix::strong_only(), 5);
    let ttn_secs = 120.0;
    assert!(
        push.mean_latency_secs() > 0.25 * ttn_secs,
        "IR discipline: push latency ({:.1}s) rides the invalidation interval",
        push.mean_latency_secs()
    );
    let pull = run_with(Strategy::Pull, LevelMix::strong_only(), 5);
    assert!(
        push.mean_latency_secs() > 50.0 * pull.mean_latency_secs(),
        "push ({:.1}s) vs pull ({:.3}s) must differ by orders of magnitude (log-scale Fig 8)",
        push.mean_latency_secs(),
        pull.mean_latency_secs()
    );
}

#[test]
fn fig8_rpcc_latency_is_at_the_pull_level() {
    let pull = run_with(Strategy::Pull, LevelMix::strong_only(), 6);
    let sc = run_with(Strategy::Rpcc, LevelMix::strong_only(), 6);
    let push = run_with(Strategy::Push, LevelMix::strong_only(), 6);
    // "at the same level as pull": same order of magnitude, and nowhere
    // near push.
    assert!(
        sc.mean_latency_secs() < 10.0 * pull.mean_latency_secs().max(0.05),
        "RPCC(SC) ({:.3}s) must stay at the pull level ({:.3}s)",
        sc.mean_latency_secs(),
        pull.mean_latency_secs()
    );
    assert!(sc.mean_latency_secs() < push.mean_latency_secs() / 20.0);
}

#[test]
fn fig8_weak_consistency_answers_instantly() {
    let wc = run_with(Strategy::Rpcc, LevelMix::weak_only(), 8);
    assert_eq!(wc.mean_latency_secs(), 0.0, "weak reads are local");
    assert_eq!(wc.queries_failed, 0, "weak reads cannot fail");
}

#[test]
fn fig8c_more_cache_means_faster_rpcc() {
    let lat = |c_num: usize| {
        let mut cfg = base(9);
        cfg.strategy = Strategy::Rpcc;
        cfg.level_mix = LevelMix::strong_only();
        cfg.c_num = c_num;
        World::new(cfg).run().mean_latency_secs()
    };
    let small = lat(2);
    let large = lat(12);
    assert!(
        large < small * 1.1,
        "more cache copies -> more relays -> RPCC latency must not grow: {small:.3}s -> {large:.3}s"
    );
}

#[test]
fn fig9_ttl_moves_rpcc_between_pull_and_push() {
    let run_ttl = |ttl: u8| {
        let mut cfg = base(10);
        cfg.workload = WorkloadMode::SingleItem;
        cfg.strategy = Strategy::Rpcc;
        cfg.level_mix = LevelMix::strong_only();
        cfg.proto.invalidation_ttl = ttl;
        World::new(cfg).run()
    };
    let narrow = run_ttl(1);
    let wide = run_ttl(7);
    assert!(
        wide.relay_gauge.mean() > narrow.relay_gauge.mean(),
        "a wider invalidation scope must elect more relays: {:.1} -> {:.1}",
        narrow.relay_gauge.mean(),
        wide.relay_gauge.mean()
    );
    assert!(
        wide.traffic_per_minute() < narrow.traffic_per_minute() * 1.05,
        "traffic must trend down as TTL grows: {:.0} -> {:.0}",
        narrow.traffic_per_minute(),
        wide.traffic_per_minute()
    );
    assert!(
        wide.mean_latency_secs() <= narrow.mean_latency_secs(),
        "latency must trend down as TTL grows: {:.3}s -> {:.3}s",
        narrow.mean_latency_secs(),
        wide.mean_latency_secs()
    );
}

#[test]
fn hybrid_sits_between_weak_and_strong() {
    let sc = run_with(Strategy::Rpcc, LevelMix::strong_only(), 11);
    let wc = run_with(Strategy::Rpcc, LevelMix::weak_only(), 11);
    let hy = run_with(Strategy::Rpcc, LevelMix::hybrid(), 11);
    assert!(hy.traffic_per_minute() < sc.traffic_per_minute());
    assert!(hy.traffic_per_minute() > wc.traffic_per_minute());
}

#[test]
fn push_adaptive_pull_sits_between_its_parents() {
    // Lan03's third strategy: push-like traffic, pull-like latency.
    let push = run_with(Strategy::Push, LevelMix::strong_only(), 13);
    let pull = run_with(Strategy::Pull, LevelMix::strong_only(), 13);
    let pap = run_with(Strategy::PushAdaptivePull, LevelMix::strong_only(), 13);
    assert!(
        pap.traffic_per_minute() < pull.traffic_per_minute(),
        "Push+AP ({:.0}) must undercut flood-polling ({:.0})",
        pap.traffic_per_minute(),
        pull.traffic_per_minute()
    );
    assert!(
        pap.mean_latency_secs() < push.mean_latency_secs() / 10.0,
        "Push+AP ({:.2}s) must answer far faster than IR-waiting push ({:.1}s)",
        pap.mean_latency_secs(),
        push.mean_latency_secs()
    );
    // And its staleness is report-cycle bounded like RPCC's relays.
    assert!(pap.audit.max_staleness() <= mp2p::sim::SimDuration::from_mins(3));
}

#[test]
fn staleness_orders_by_level() {
    let sc = run_with(Strategy::Rpcc, LevelMix::strong_only(), 12);
    let wc = run_with(Strategy::Rpcc, LevelMix::weak_only(), 12);
    let frac = |r: &RunReport| 1.0 - r.audit.fresh_fraction();
    assert!(
        frac(&wc) > frac(&sc),
        "weak reads must serve more stale answers than strong reads: {:.3} vs {:.3}",
        frac(&wc),
        frac(&sc)
    );
}
