//! Hostile-environment runs: heavy churn, lossy links, sparse topologies
//! and partitions. The protocols must degrade gracefully — no panics, no
//! accounting leaks, and the recovery machinery (Section 4.5) must keep
//! the system serving.

use mp2p::net::LinkModel;
use mp2p::rpcc::{LevelMix, MobilityKind, RunReport, Strategy, World, WorldConfig};
use mp2p::sim::SimDuration;

fn hostile(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.n_peers = 25;
    cfg.terrain = mp2p::mobility::Terrain::new(1_200.0, 1_200.0);
    cfg.c_num = 5;
    cfg.sim_time = SimDuration::from_mins(15);
    cfg.warmup = SimDuration::from_mins(3);
    // 10% frame loss, disconnections every ~2 min lasting ~45 s.
    cfg.link = LinkModel::new(
        2_000_000,
        SimDuration::from_millis(1),
        SimDuration::from_millis(4),
        0.10,
    );
    cfg.i_switch = Some(SimDuration::from_mins(2));
    cfg.switch_off_mean = SimDuration::from_secs(45);
    cfg
}

fn run(strategy: Strategy, mix: LevelMix, seed: u64) -> RunReport {
    let mut cfg = hostile(seed);
    cfg.strategy = strategy;
    cfg.level_mix = mix;
    World::new(cfg).run()
}

#[test]
fn hostile_runs_complete_for_every_strategy() {
    for strategy in [Strategy::Rpcc, Strategy::Push, Strategy::Pull] {
        let r = run(strategy, LevelMix::hybrid(), 1);
        assert_eq!(r.queries_issued, r.queries_served() + r.queries_failed);
        assert!(
            r.audit.served() > 0,
            "{strategy} must keep serving under churn and loss"
        );
    }
}

#[test]
fn hostile_runs_stay_deterministic() {
    let a = run(Strategy::Rpcc, LevelMix::hybrid(), 2);
    let b = run(Strategy::Rpcc, LevelMix::hybrid(), 2);
    assert_eq!(a.traffic.transmissions(), b.traffic.transmissions());
    assert_eq!(a.audit.served(), b.audit.served());
    assert_eq!(a.queries_failed, b.queries_failed);
}

#[test]
fn weak_reads_survive_anything() {
    let r = run(Strategy::Rpcc, LevelMix::weak_only(), 3);
    assert_eq!(r.queries_failed, 0, "weak reads are local and cannot fail");
}

#[test]
fn relay_overlay_survives_churn() {
    let r = run(Strategy::Rpcc, LevelMix::strong_only(), 4);
    assert!(
        r.relay_gauge.mean() > 0.0,
        "the coefficient machinery must keep electing relays despite churn"
    );
    // Churny nodes get demoted, so the overlay is smaller than in calm
    // runs — but it must exist and turn over (max above mean indicates
    // re-formation).
    assert!(r.relay_gauge.max() >= r.relay_gauge.mean());
}

#[test]
fn loss_costs_traffic_but_not_correctness() {
    let mut calm_cfg = hostile(5);
    calm_cfg.link = calm_cfg.link.lossless();
    calm_cfg.i_switch = None;
    calm_cfg.strategy = Strategy::Rpcc;
    calm_cfg.level_mix = LevelMix::strong_only();
    let calm = World::new(calm_cfg).run();
    let rough = run(Strategy::Rpcc, LevelMix::strong_only(), 5);
    assert!(
        rough.failure_rate() >= calm.failure_rate(),
        "loss and churn cannot make queries *more* reliable: calm {:.3} vs rough {:.3}",
        calm.failure_rate(),
        rough.failure_rate()
    );
    // Staleness bound still holds relative to the report cycle + the
    // off-period a relay may sleep through (disconnection handling,
    // Section 4.5): generous bound of three cycles.
    assert!(
        rough.audit.max_staleness() <= SimDuration::from_mins(6),
        "SC staleness under churn must stay within a few report cycles, got {}",
        rough.audit.max_staleness()
    );
}

#[test]
fn sparse_partitioned_network_fails_queries_but_never_lies() {
    // A genuinely partitioned deployment: islands of nodes.
    let mut cfg = WorldConfig::paper_default(6);
    cfg.n_peers = 16;
    cfg.terrain = mp2p::mobility::Terrain::new(3_000.0, 3_000.0); // very sparse
    cfg.sim_time = SimDuration::from_mins(12);
    cfg.warmup = SimDuration::from_mins(2);
    cfg.c_num = 4;
    cfg.strategy = Strategy::Rpcc;
    cfg.level_mix = LevelMix::strong_only();
    cfg.mobility = MobilityKind::Stationary;
    cfg.i_switch = None;
    let r = World::new(cfg).run();
    assert!(
        r.failure_rate() > 0.2,
        "islands must make many SC queries unreachable"
    );
    // The audit panics if any served answer carries an invented version;
    // reaching this line proves partitioned answers were still honest.
    assert_eq!(r.queries_issued, r.queries_served() + r.queries_failed);
}

#[test]
fn pending_poll_accounting_survives_churn_and_crashes() {
    // Regression: a node can disappear (soft churn) or crash (fault plan,
    // volatile state wiped) while POLL retry timers for its queries are
    // still queued. Stale timers must fire as no-ops and every query must
    // end up exactly once in served or failed — under both kinds of
    // removal at once.
    let mut cfg = hostile(8);
    cfg.strategy = Strategy::Rpcc;
    cfg.level_mix = LevelMix::strong_only();
    cfg.proto = cfg.proto.hardened();
    cfg.faults = mp2p::net::FaultPlan::preset("crash", cfg.sim_time).expect("known preset");
    let r = World::new(cfg).run();
    assert_eq!(
        r.queries_issued,
        r.queries_served() + r.queries_failed,
        "pending-poll accounting leaked under churn + crashes"
    );
    assert!(r.faults.crashes >= 1, "the plan must actually crash nodes");
    assert_eq!(
        r.faults.crashes, r.faults.recoveries,
        "every crash window must close"
    );
    assert!(r.audit.served() > 0, "the system must keep serving");
}

#[test]
fn fault_presets_stay_deterministic_and_leak_free() {
    // Same seed, same preset: byte-identical reports, exact accounting.
    // Exercises the full injector (burst loss, duplication, partition,
    // crashes) on top of the baseline churn of this suite.
    let run_hostile = |seed: u64| {
        let mut cfg = hostile(seed);
        cfg.strategy = Strategy::Rpcc;
        cfg.level_mix = LevelMix::hybrid();
        cfg.proto = cfg.proto.hardened();
        cfg.faults = mp2p::net::FaultPlan::preset("hostile", cfg.sim_time).expect("known preset");
        World::new(cfg).run()
    };
    let a = run_hostile(9);
    let b = run_hostile(9);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "fault injection broke determinism"
    );
    assert_eq!(a.queries_issued, a.queries_served() + a.queries_failed);
    assert!(a.faults.burst_drops > 0, "GE chain never dropped a frame");
    assert!(a.faults.frames_duplicated > 0, "duplication never fired");
}

#[test]
fn depleted_batteries_demote_relays() {
    let mut cfg = hostile(7);
    cfg.strategy = Strategy::Rpcc;
    cfg.level_mix = LevelMix::strong_only();
    // Tiny batteries: idle drain alone crosses the μ_CE = 0.6 threshold
    // mid-run.
    cfg.battery_mj = 1_500.0;
    let r = World::new(cfg).run();
    let b = r.battery_gauge.last();
    assert!(b < 0.6, "batteries must visibly drain, got {b}");
    // Late-run relay population collapses as CE disqualifies everyone.
    assert!(
        r.relay_gauge.last() <= r.relay_gauge.max(),
        "relay population must shrink as energy dies"
    );
}
