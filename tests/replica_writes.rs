//! The replica-write extension (paper future work §6 item 3): any peer
//! may modify an item it caches; writes serialise through the item's
//! source host and propagate via whatever consistency strategy runs.

use mp2p::rpcc::{LevelMix, RunReport, Strategy, World, WorldConfig};
use mp2p::sim::SimDuration;

fn writing_config(strategy: Strategy, seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.n_peers = 25;
    cfg.terrain = mp2p::mobility::Terrain::new(800.0, 800.0);
    cfg.c_num = 5;
    cfg.sim_time = SimDuration::from_mins(20);
    cfg.warmup = SimDuration::from_mins(4);
    cfg.strategy = strategy;
    cfg.level_mix = LevelMix::hybrid();
    cfg.i_write = Some(SimDuration::from_mins(2));
    // A calm network isolates the write machinery itself.
    cfg.i_switch = None;
    cfg.link = cfg.link.lossless();
    cfg
}

fn run(strategy: Strategy, seed: u64) -> RunReport {
    World::new(writing_config(strategy, seed)).run()
}

#[test]
fn writes_complete_under_every_strategy() {
    for strategy in [
        Strategy::Rpcc,
        Strategy::Push,
        Strategy::Pull,
        Strategy::PushAdaptivePull,
    ] {
        let r = run(strategy, 1);
        assert!(r.writes_issued > 50, "{strategy}: write workload must flow");
        assert!(
            r.writes_completed() + r.writes_failed >= r.writes_issued * 9 / 10,
            "{strategy}: most writes resolve ({} issued, {} done, {} failed)",
            r.writes_issued,
            r.writes_completed(),
            r.writes_failed
        );
        assert!(
            r.writes_failed * 20 < r.writes_issued,
            "{strategy}: a calm lossless network loses few writes, lost {}/{}",
            r.writes_failed,
            r.writes_issued
        );
    }
}

#[test]
fn write_latency_is_a_round_trip() {
    let r = run(Strategy::Rpcc, 2);
    assert!(r.writes_completed() > 0);
    let mean = r.write_latency.mean_secs();
    assert!(
        mean > 0.0 && mean < 2.0,
        "a serialised write is one unicast round trip (plus occasional discovery), got {mean:.3}s"
    );
}

#[test]
fn written_versions_propagate_to_readers() {
    // With writes flowing, masters advance much faster than the paper's
    // 2-minute source updates; readers must still observe versions the
    // audit accepts (the audit panics on invented versions) and strong
    // reads must stay within the report cycle.
    let r = run(Strategy::Rpcc, 3);
    assert!(r.audit.served() > 500);
    let strong = &r.audit_by_level[mp2p::rpcc::ConsistencyLevel::Strong.index()];
    assert!(
        strong.max_staleness() <= SimDuration::from_mins(3),
        "SC staleness must stay report-cycle bounded with writes flowing, got {}",
        strong.max_staleness()
    );
}

#[test]
fn writes_add_traffic_but_not_failures() {
    let without = {
        let mut cfg = writing_config(Strategy::Rpcc, 4);
        cfg.i_write = None;
        World::new(cfg).run()
    };
    let with = run(Strategy::Rpcc, 4);
    assert!(
        with.traffic.transmissions() > without.traffic.transmissions(),
        "the write workload must cost transmissions"
    );
    use mp2p::metrics::MessageClass;
    assert!(with.traffic.by_class(MessageClass::WriteRequest) > 0);
    assert!(with.traffic.by_class(MessageClass::WriteAck) > 0);
    assert_eq!(without.traffic.by_class(MessageClass::WriteRequest), 0);
}

#[test]
fn writes_are_deterministic() {
    let a = run(Strategy::Pull, 5);
    let b = run(Strategy::Pull, 5);
    assert_eq!(a.writes_completed(), b.writes_completed());
    assert_eq!(a.write_latency.mean(), b.write_latency.mean());
    assert_eq!(a.traffic.transmissions(), b.traffic.transmissions());
}

#[test]
fn single_item_mode_serialises_all_writers_through_one_source() {
    let mut cfg = writing_config(Strategy::Rpcc, 6);
    cfg.workload = mp2p::rpcc::WorkloadMode::SingleItem;
    let r = World::new(cfg).run();
    assert!(
        r.writes_completed() > 0,
        "everyone writes the one shared item"
    );
    assert!(r.audit.served() > 0);
}
