//! Randomised whole-system runs: many small scenarios with random
//! parameters must complete, balance their accounting, and respect the
//! instruments' invariants. (Seeded loops rather than proptest: each case
//! is a full simulation, so we bound the count explicitly.)

use mp2p::rpcc::{LevelMix, MobilityKind, Strategy, World, WorldConfig};
use mp2p::sim::{SimDuration, SimRng};

fn random_config(rng: &mut SimRng) -> WorldConfig {
    let n_peers = 6 + rng.uniform_u64(20) as usize;
    let mut cfg = WorldConfig::paper_default(rng.next_u64());
    cfg.n_peers = n_peers;
    cfg.c_num = (1 + rng.uniform_u64(4) as usize).min(n_peers - 1);
    cfg.terrain = mp2p::mobility::Terrain::new(
        400.0 + rng.uniform_f64() * 1_600.0,
        400.0 + rng.uniform_f64() * 1_600.0,
    );
    cfg.sim_time = SimDuration::from_secs(240 + rng.uniform_u64(360));
    cfg.warmup = SimDuration::from_secs(60);
    cfg.i_update = SimDuration::from_secs(20 + rng.uniform_u64(300));
    cfg.i_query = SimDuration::from_secs(3 + rng.uniform_u64(40));
    cfg.strategy = match rng.uniform_u64(3) {
        0 => Strategy::Rpcc,
        1 => Strategy::Push,
        _ => Strategy::Pull,
    };
    cfg.level_mix = match rng.uniform_u64(4) {
        0 => LevelMix::weak_only(),
        1 => LevelMix::delta_only(),
        2 => LevelMix::strong_only(),
        _ => LevelMix::hybrid(),
    };
    cfg.mobility = match rng.uniform_u64(4) {
        0 => MobilityKind::Stationary,
        1 => MobilityKind::Walk {
            speed_min: 0.5,
            speed_max: 3.0,
            epoch: SimDuration::from_secs(20),
        },
        2 => MobilityKind::Manhattan {
            block: 120.0,
            speed: 1.5,
        },
        _ => MobilityKind::Waypoint {
            speed_min: 0.5,
            speed_max: 2.5,
            max_pause: SimDuration::from_secs(20),
        },
    };
    if rng.bernoulli(0.5) {
        cfg.link.loss_prob = rng.uniform_f64() * 0.15;
    }
    if rng.bernoulli(0.3) {
        cfg.i_switch = None;
    }
    if rng.bernoulli(0.25) {
        cfg.proto.adaptive = true;
    }
    if rng.bernoulli(0.25) {
        cfg.proto.max_relays_per_item = Some(1 + rng.uniform_u64(4) as usize);
    }
    cfg
}

#[test]
fn random_scenarios_complete_with_balanced_accounting() {
    let mut rng = SimRng::from_seed(0xFEED, 0);
    for case in 0..24 {
        let cfg = random_config(&mut rng);
        let label = format!(
            "case {case}: {:?} n={} c={} loss={:.2}",
            cfg.strategy, cfg.n_peers, cfg.c_num, cfg.link.loss_prob
        );
        let report = World::new(cfg).run();
        assert_eq!(
            report.queries_issued,
            report.queries_served() + report.queries_failed,
            "{label}: accounting must balance"
        );
        assert_eq!(
            report.latency.count(),
            report.audit.served(),
            "{label}: one latency sample per served query"
        );
        let f = report.failure_rate();
        assert!(
            (0.0..=1.0).contains(&f),
            "{label}: failure rate {f} out of range"
        );
        let fresh = report.audit.fresh_fraction();
        assert!(
            (0.0..=1.0).contains(&fresh),
            "{label}: fresh fraction {fresh} out of range"
        );
        let battery = report.battery_gauge.last();
        assert!(
            (0.0..=1.0).contains(&battery) || report.battery_gauge.count() == 0,
            "{label}: battery fraction {battery} out of range"
        );
    }
}

#[test]
fn random_scenarios_are_reproducible() {
    let mut rng_a = SimRng::from_seed(0xABCD, 0);
    let mut rng_b = SimRng::from_seed(0xABCD, 0);
    for _ in 0..6 {
        let a = World::new(random_config(&mut rng_a)).run();
        let b = World::new(random_config(&mut rng_b)).run();
        assert_eq!(a.traffic.transmissions(), b.traffic.transmissions());
        assert_eq!(a.audit.served(), b.audit.served());
        assert_eq!(a.queries_failed, b.queries_failed);
        assert_eq!(a.latency.mean(), b.latency.mean());
    }
}
