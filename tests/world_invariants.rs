//! World-level invariants that must hold for every strategy: exact
//! determinism, query accounting, and sane instrument readouts.

use mp2p::rpcc::{LevelMix, RunReport, Strategy, World, WorldConfig};
use mp2p::sim::SimDuration;

fn run(strategy: Strategy, seed: u64) -> RunReport {
    let mut cfg = WorldConfig::small_test(seed);
    cfg.strategy = strategy;
    cfg.level_mix = LevelMix::hybrid();
    cfg.sim_time = SimDuration::from_mins(8);
    cfg.warmup = SimDuration::from_mins(2);
    World::new(cfg).run()
}

/// Everything we can observe about a run, flattened for equality checks.
fn fingerprint(r: &RunReport) -> Vec<u64> {
    vec![
        r.traffic.transmissions(),
        r.traffic.bytes(),
        r.latency.count(),
        r.latency.mean().as_millis(),
        r.latency.max().as_millis(),
        r.audit.served(),
        r.audit.stale_served(),
        r.audit.max_staleness().as_millis(),
        r.queries_issued,
        r.queries_failed,
        r.relay_gauge.count(),
        (r.relay_gauge.mean() * 1_000.0) as u64,
        (r.energy_used_mj * 1_000.0) as u64,
    ]
}

#[test]
fn identical_seeds_give_identical_runs() {
    for strategy in [Strategy::Rpcc, Strategy::Push, Strategy::Pull] {
        let a = fingerprint(&run(strategy, 1234));
        let b = fingerprint(&run(strategy, 1234));
        assert_eq!(a, b, "{strategy} run must be bit-for-bit deterministic");
    }
}

#[test]
fn different_seeds_give_different_runs() {
    let a = fingerprint(&run(Strategy::Rpcc, 1));
    let b = fingerprint(&run(Strategy::Rpcc, 2));
    assert_ne!(a, b, "seeds must actually matter");
}

#[test]
fn query_accounting_partitions_exactly() {
    for strategy in [Strategy::Rpcc, Strategy::Push, Strategy::Pull] {
        let r = run(strategy, 77);
        assert_eq!(
            r.queries_issued,
            r.queries_served() + r.queries_failed,
            "{strategy}: every measured query is served or failed, exactly once"
        );
        assert!(
            r.queries_issued > 0,
            "{strategy}: workload must generate queries"
        );
        assert_eq!(
            r.latency.count(),
            r.audit.served(),
            "one latency sample per served query"
        );
    }
}

#[test]
fn per_level_metrics_sum_to_totals() {
    let r = run(Strategy::Rpcc, 5);
    let served_by_level: u64 = r.audit_by_level.iter().map(|a| a.served()).sum();
    assert_eq!(served_by_level, r.audit.served());
    let latencies_by_level: u64 = r.latency_by_level.iter().map(|l| l.count()).sum();
    assert_eq!(latencies_by_level, r.latency.count());
}

#[test]
fn energy_is_spent_and_bounded() {
    for strategy in [Strategy::Rpcc, Strategy::Push, Strategy::Pull] {
        let r = run(strategy, 9);
        assert!(
            r.energy_used_mj > 0.0,
            "{strategy}: radios must cost energy"
        );
        // 20 nodes with 100 kJ-equivalent batteries: cannot exceed capacity.
        assert!(r.energy_used_mj <= 20.0 * 100_000.0);
        let b = r.battery_gauge.last();
        assert!(
            (0.0..=1.0).contains(&b),
            "{strategy}: battery fraction out of range: {b}"
        );
    }
}

#[test]
fn gauges_only_report_relays_for_rpcc() {
    let rpcc = run(Strategy::Rpcc, 3);
    let push = run(Strategy::Push, 3);
    let pull = run(Strategy::Pull, 3);
    assert!(rpcc.relay_gauge.mean() > 0.0, "RPCC must elect relay peers");
    assert!(
        rpcc.candidate_gauge.mean() > 0.0,
        "RPCC must have candidates"
    );
    assert_eq!(push.relay_gauge.mean(), 0.0);
    assert_eq!(pull.relay_gauge.mean(), 0.0);
}

#[test]
fn measured_window_is_reported() {
    let r = run(Strategy::Rpcc, 4);
    assert_eq!(
        r.measured,
        SimDuration::from_mins(6),
        "8 min run minus 2 min warmup"
    );
    assert!(r.traffic_per_minute() > 0.0);
}

#[test]
fn strategies_disagree_on_cost() {
    // Not a shape test (see strategy_shapes.rs) — just that the strategy
    // knob demonstrably changes behaviour.
    let rpcc = fingerprint(&run(Strategy::Rpcc, 21));
    let push = fingerprint(&run(Strategy::Push, 21));
    let pull = fingerprint(&run(Strategy::Pull, 21));
    assert_ne!(rpcc, push);
    assert_ne!(rpcc, pull);
    assert_ne!(push, pull);
}

#[test]
fn audit_never_sees_future_versions() {
    // The audit panics inside the run if a cache ever serves a version the
    // source has not produced; completing runs for all strategies is the
    // assertion.
    for strategy in [Strategy::Rpcc, Strategy::Push, Strategy::Pull] {
        let r = run(strategy, 31);
        assert!(r.audit.served() > 0, "{strategy} must serve queries");
    }
}
