//! Ground-truth consistency guarantees (Section 3, Eq. 3.2.1–3.2.3),
//! audited under friendly conditions: a lossless channel, no node churn,
//! and a dense static-ish deployment so the protocol machinery — not the
//! radio environment — determines what each query is answered with.

use mp2p::rpcc::{LevelMix, MobilityKind, RunReport, Strategy, World, WorldConfig};
use mp2p::sim::SimDuration;

/// A well-connected, churn-free scenario.
fn friendly(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.n_peers = 25;
    cfg.terrain = mp2p::mobility::Terrain::new(700.0, 700.0); // dense: ~3 hops across
    cfg.c_num = 6;
    cfg.sim_time = SimDuration::from_mins(20);
    cfg.warmup = SimDuration::from_mins(4);
    cfg.i_switch = None; // no disconnections
    cfg.link = cfg.link.lossless();
    cfg.mobility = MobilityKind::Waypoint {
        speed_min: 0.5,
        speed_max: 1.5,
        max_pause: SimDuration::from_secs(30),
    };
    cfg
}

fn run(strategy: Strategy, mix: LevelMix, seed: u64) -> RunReport {
    let mut cfg = friendly(seed);
    cfg.strategy = strategy;
    cfg.level_mix = mix;
    World::new(cfg).run()
}

#[test]
fn weak_consistency_always_serves_a_previous_correct_value() {
    // Eq. 3.2.3 only demands *some* previous version — which the audit
    // enforces by panicking on versions the source never produced. The
    // stronger observable claim: weak reads never fail and are instant.
    let r = run(Strategy::Rpcc, LevelMix::weak_only(), 1);
    assert_eq!(r.queries_failed, 0);
    assert_eq!(r.latency.max(), SimDuration::ZERO);
    assert!(r.audit.served() > 100);
}

#[test]
fn rpcc_strong_staleness_is_bounded_by_the_report_cycle() {
    // RPCC's "strong" consistency rides relay leases that are refreshed
    // every TTN: an answer can trail the master by at most one report
    // cycle plus propagation (this is the protocol's real guarantee — see
    // EXPERIMENTS.md). TTN = 2 min; allow 15 s of propagation slack.
    let r = run(Strategy::Rpcc, LevelMix::strong_only(), 2);
    assert!(r.audit.served() > 100, "need a meaningful sample");
    let bound = SimDuration::from_mins(2) + SimDuration::from_secs(15);
    assert!(
        r.audit.max_staleness() <= bound,
        "RPCC(SC) staleness {} exceeds one report cycle {}",
        r.audit.max_staleness(),
        bound
    );
}

#[test]
fn rpcc_delta_staleness_is_bounded_by_ttp_plus_cycle() {
    // Δ-consistency: TTP is the Δ value (Section 4.4). A Δ answer can
    // trail by the lease it was granted (TTP = 4 min) plus the report
    // cycle behind the validation itself (TTN = 2 min) plus slack.
    let r = run(Strategy::Rpcc, LevelMix::delta_only(), 3);
    assert!(r.audit.served() > 100);
    let bound = SimDuration::from_mins(4) + SimDuration::from_mins(2) + SimDuration::from_secs(15);
    assert!(
        r.audit.max_staleness() <= bound,
        "RPCC(DC) staleness {} exceeds TTP + TTN {}",
        r.audit.max_staleness(),
        bound
    );
}

#[test]
fn pull_answers_are_fresh_up_to_the_round_trip() {
    // Pull validates against the master on every query: an answer can be
    // stale only if the master updated during the poll round trip.
    let r = run(Strategy::Pull, LevelMix::strong_only(), 4);
    assert!(r.audit.served() > 100);
    assert!(
        r.audit.max_staleness() <= SimDuration::from_secs(10),
        "pull staleness {} exceeds a round trip",
        r.audit.max_staleness()
    );
}

#[test]
fn push_answers_trail_by_at_most_one_report() {
    let r = run(Strategy::Push, LevelMix::strong_only(), 5);
    assert!(r.audit.served() > 100);
    let bound = SimDuration::from_mins(2) + SimDuration::from_secs(15);
    assert!(
        r.audit.max_staleness() <= bound,
        "push staleness {} exceeds one invalidation interval",
        r.audit.max_staleness()
    );
}

#[test]
fn strong_reads_are_fresher_than_delta_which_beat_weak() {
    let sc = run(Strategy::Rpcc, LevelMix::strong_only(), 6);
    let dc = run(Strategy::Rpcc, LevelMix::delta_only(), 6);
    let wc = run(Strategy::Rpcc, LevelMix::weak_only(), 6);
    assert!(sc.audit.max_staleness() <= dc.audit.max_staleness());
    assert!(
        dc.audit.max_staleness() < wc.audit.max_staleness(),
        "weak reads never revalidate, so their worst staleness must dominate: DC {} vs WC {}",
        dc.audit.max_staleness(),
        wc.audit.max_staleness()
    );
}

#[test]
fn friendly_conditions_serve_almost_everything() {
    for strategy in [Strategy::Rpcc, Strategy::Push, Strategy::Pull] {
        let r = run(strategy, LevelMix::hybrid(), 7);
        assert!(
            r.failure_rate() < 0.05,
            "{strategy}: a dense, lossless, churn-free network must serve ≥95% of queries, \
             failed {:.1}%",
            r.failure_rate() * 100.0
        );
    }
}

#[test]
fn delta_bound_reestablishes_after_partition_heal() {
    // Satellite of the chaos harness: a bisection partition severs the
    // network for the middle fifth of the run, orphaning relays and
    // stranding leases on the far side. Once the partition heals, the
    // next TTN report cycle revalidates (or the orphan-lease machinery
    // demotes) every surviving relay — so measuring only after
    // heal + TTP + TTN must find the Δ-staleness bound intact again.
    let mut cfg = friendly(9);
    cfg.strategy = Strategy::Rpcc;
    cfg.level_mix = LevelMix::delta_only();
    cfg.proto = cfg.proto.hardened();
    cfg.faults = mp2p::net::FaultPlan::partition(cfg.sim_time);
    let heal = cfg.faults.partitions[0].heal;
    cfg.warmup = heal.saturating_since(mp2p::sim::SimTime::ZERO)
        + cfg.proto.ttp
        + cfg.proto.ttn
        + SimDuration::from_secs(30);
    assert!(
        cfg.warmup < cfg.sim_time,
        "scenario leaves a measured window"
    );
    let bound = cfg.proto.ttp + cfg.proto.ttn + SimDuration::from_secs(15);
    let r = World::new(cfg).run();
    assert_eq!(r.faults.partitions_started, 1);
    assert_eq!(r.faults.partitions_healed, 1);
    assert!(r.audit.served() > 50, "need a meaningful post-heal sample");
    assert!(
        r.audit.max_staleness() <= bound,
        "post-heal Δ staleness {} exceeds TTP + TTN bound {}",
        r.audit.max_staleness(),
        bound
    );
}

#[test]
fn version_lag_is_small_for_validated_reads() {
    // Updates batch per TTN cycle: with I_Update = TTN = 2 min, the
    // per-cycle update count is Poisson(1), so a validated answer can
    // trail by several versions in one cycle's tail — but not by many
    // cycles' worth.
    let r = run(Strategy::Rpcc, LevelMix::strong_only(), 8);
    assert!(
        r.audit.max_version_lag() <= 8,
        "SC answers should trail by at most one cycle's Poisson tail, got {}",
        r.audit.max_version_lag()
    );
}
