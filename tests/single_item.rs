//! The Fig. 9 single-item scenario: "one peer is randomly selected as the
//! source host and its data item is cached by all other peers."

use mp2p::rpcc::{LevelMix, RunReport, Strategy, WorkloadMode, World, WorldConfig};
use mp2p::sim::SimDuration;

fn single(strategy: Strategy, ttl: u8, seed: u64) -> RunReport {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.n_peers = 30;
    cfg.terrain = mp2p::mobility::Terrain::new(1_100.0, 1_100.0);
    cfg.sim_time = SimDuration::from_mins(16);
    cfg.warmup = SimDuration::from_mins(4);
    cfg.workload = WorkloadMode::SingleItem;
    cfg.strategy = strategy;
    cfg.level_mix = LevelMix::strong_only();
    cfg.proto.invalidation_ttl = ttl;
    World::new(cfg).run()
}

#[test]
fn only_the_selected_source_floods_invalidations() {
    use mp2p::metrics::MessageClass;
    let r = single(Strategy::Rpcc, 3, 1);
    // One source flooding every TTN=2 min with TTL 3 over a 12-minute
    // measured window: a handful of floods, each a few dozen hops — far
    // below what 30 publishing sources would generate (hundreds/minute).
    let inval = r.traffic.by_class(MessageClass::Invalidation);
    let per_minute = inval as f64 / 12.0;
    assert!(per_minute > 0.0, "the source must keep flooding reports");
    assert!(
        per_minute < 30.0,
        "only one source may flood; got {per_minute:.0} invalidation tx/min"
    );
}

#[test]
fn all_queries_target_the_single_item() {
    let r = single(Strategy::Rpcc, 3, 2);
    // Version lag only makes sense against the one item's history; a
    // mixed-catalogue run would show far more served queries (the source
    // itself queries nothing in this mode).
    assert!(r.queries_issued > 0);
    assert_eq!(r.queries_issued, r.queries_served() + r.queries_failed);
}

#[test]
fn wider_invalidation_scope_elects_more_relays() {
    let narrow = single(Strategy::Rpcc, 1, 3);
    let wide = single(Strategy::Rpcc, 7, 3);
    assert!(
        wide.relay_gauge.mean() > narrow.relay_gauge.mean() * 1.3,
        "TTL 7 must elect visibly more relays than TTL 1: {:.1} vs {:.1}",
        narrow.relay_gauge.mean(),
        wide.relay_gauge.mean()
    );
}

#[test]
fn rpcc_sits_between_pull_and_push_on_traffic() {
    let pull = single(Strategy::Pull, 3, 4);
    let push = single(Strategy::Push, 3, 4);
    let rpcc = single(Strategy::Rpcc, 3, 4);
    assert!(
        rpcc.traffic_per_minute() < pull.traffic_per_minute(),
        "RPCC ({:.0}) below pull ({:.0})",
        rpcc.traffic_per_minute(),
        pull.traffic_per_minute()
    );
    assert!(
        rpcc.traffic_per_minute() > push.traffic_per_minute(),
        "RPCC ({:.0}) above push ({:.0})",
        rpcc.traffic_per_minute(),
        push.traffic_per_minute()
    );
}

#[test]
fn deterministic_source_selection_per_seed() {
    let a = single(Strategy::Rpcc, 3, 5);
    let b = single(Strategy::Rpcc, 3, 5);
    assert_eq!(a.traffic.transmissions(), b.traffic.transmissions());
    assert_eq!(a.audit.served(), b.audit.served());
}
