//! Flight-recorder integration tests: the trace stream produced by a real
//! seeded run must obey causal invariants, its summary sink must agree
//! *exactly* with the run's own metrics, and the JSONL journal must be
//! well-formed line-parseable JSON.

use std::collections::HashSet;

use mp2p::metrics::MessageClass;
use mp2p::rpcc::{Strategy, World, WorldConfig};
use mp2p::sim::SimTime;
use mp2p::trace::reader::JournalReader;
use mp2p::trace::{EventKind, JsonlSink, RingSink, SummarySink, TeeSink, TraceEvent};

fn traced_world(seed: u64) -> World {
    let mut cfg = WorldConfig::small_test(seed);
    cfg.strategy = Strategy::Rpcc;
    World::new(cfg)
}

/// One seeded small-world RPCC run, recorded into a ring large enough to
/// hold everything plus a summary.
fn run_with_ring(seed: u64) -> (mp2p::rpcc::RunReport, Vec<(SimTime, TraceEvent)>) {
    let mut world = traced_world(seed);
    world.set_tracer(Box::new(RingSink::new(4_000_000)));
    let (report, tracer) = world.run_traced();
    let ring = tracer
        .as_any()
        .downcast_ref::<RingSink>()
        .expect("ring sink installed above");
    assert!(
        (ring.total_recorded() as usize) <= ring.capacity(),
        "ring overflowed; invariant checks would see a truncated stream"
    );
    let events: Vec<(SimTime, TraceEvent)> = ring.iter().copied().collect();
    (report, events)
}

#[test]
fn deliveries_are_matched_by_prior_sends() {
    let (_, events) = run_with_ring(11);
    // Per message class: nothing is delivered before something of that
    // class was sent, and no class appears in deliveries only.
    let mut first_send: [Option<SimTime>; MessageClass::ALL.len()] =
        [None; MessageClass::ALL.len()];
    for (at, ev) in &events {
        match ev {
            TraceEvent::MsgSend { class, .. } => {
                let slot = &mut first_send[class.index()];
                if slot.is_none() {
                    *slot = Some(*at);
                }
            }
            TraceEvent::MsgDeliver { class, .. } => {
                let sent = first_send[class.index()];
                assert!(
                    sent.is_some_and(|s| s <= *at),
                    "{} delivered at {at} before any send",
                    class.label()
                );
            }
            _ => {}
        }
    }
}

#[test]
fn hop_counts_respect_ttl_budgets() {
    let cfg = WorldConfig::small_test(12);
    let flood_budget = cfg
        .net
        .rreq_ttl
        .max(cfg.proto.broadcast_ttl)
        .max(cfg.proto.invalidation_ttl);
    // A unicast traverses at most max_unicast_hops links; hops counts the
    // receiving link too, hence +1.
    let unicast_budget = cfg.net.max_unicast_hops + 1;
    let (_, events) = run_with_ring(12);
    let mut deliveries = 0u64;
    for (_, ev) in &events {
        if let TraceEvent::MsgDeliver {
            hops, via_flood, ..
        } = ev
        {
            deliveries += 1;
            let budget = if *via_flood {
                flood_budget
            } else {
                unicast_budget
            };
            assert!(
                *hops <= budget,
                "delivery with {hops} hops exceeds budget {budget} (flood={via_flood})"
            );
        }
    }
    assert!(deliveries > 0, "run delivered nothing; test is vacuous");
}

#[test]
fn queries_never_serve_after_failing() {
    let (report, events) = run_with_ring(13);
    let mut failed: HashSet<u64> = HashSet::new();
    let mut served: HashSet<u64> = HashSet::new();
    let mut issued: HashSet<u64> = HashSet::new();
    for (_, ev) in &events {
        match ev {
            TraceEvent::QueryIssued { query, .. } => {
                assert!(issued.insert(*query), "query {query} issued twice");
            }
            TraceEvent::QueryServed { query, .. } => {
                assert!(issued.contains(query), "query {query} served, never issued");
                assert!(
                    !failed.contains(query),
                    "query {query} served after failing"
                );
                assert!(served.insert(*query), "query {query} served twice");
            }
            TraceEvent::QueryFailed { query, .. } => {
                assert!(issued.contains(query), "query {query} failed, never issued");
                assert!(
                    !served.contains(query),
                    "query {query} failed after being served"
                );
                assert!(failed.insert(*query), "query {query} failed twice");
            }
            _ => {}
        }
    }
    assert!(report.queries_issued > 0);
    assert!(!served.is_empty(), "no queries served; test is vacuous");
}

#[test]
fn summary_sink_matches_run_metrics_exactly() {
    let mut cfg = WorldConfig::small_test(21);
    cfg.strategy = Strategy::Rpcc;
    let warmup = cfg.warmup;
    let mut world = World::new(cfg);
    world.set_tracer(Box::new(SummarySink::new(warmup)));
    let (report, tracer) = world.run_traced();
    let summary = tracer
        .as_any()
        .downcast_ref::<SummarySink>()
        .expect("summary sink installed above");
    // Byte-for-byte identical traffic accounting: same per-class counts,
    // same byte totals, derived purely from MsgSend events.
    assert_eq!(summary.traffic(), &report.traffic);
    // Latency derived from QueryServed events matches the world's own
    // measured-at-issue bookkeeping.
    assert_eq!(summary.latency(), &report.latency);
    assert!(report.traffic.transmissions() > 0);
}

#[test]
fn jsonl_journal_is_parseable_and_complete() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("mp2p-trace-test-{}.jsonl", std::process::id()));
    let mut cfg = WorldConfig::small_test(31);
    cfg.strategy = Strategy::Rpcc;
    let warmup = cfg.warmup;
    let mut world = World::new(cfg);
    world.set_tracer(Box::new(TeeSink::new(vec![
        Box::new(JsonlSink::create_v4_with_warmup(&path, warmup).expect("temp file")),
        Box::new(SummarySink::new(warmup)),
    ])));
    let (_report, tracer) = world.run_traced();
    let tee = tracer.as_any().downcast_ref::<TeeSink>().expect("tee");
    let jsonl = tee.sinks()[0]
        .as_any()
        .downcast_ref::<JsonlSink>()
        .expect("jsonl first");
    let summary = tee.sinks()[1]
        .as_any()
        .downcast_ref::<SummarySink>()
        .expect("summary second");
    assert!(jsonl.io_error().is_none(), "journal hit an I/O error");

    // Streaming validation: the versioned header line plus one typed event
    // per recorded line, never buffering the journal as a whole.
    let file = std::fs::File::open(&path).expect("journal readable");
    let mut reader =
        JournalReader::new(std::io::BufReader::new(file)).expect("valid journal header");
    assert_eq!(reader.header().schema, mp2p::trace::JOURNAL_SCHEMA);
    assert_eq!(reader.header().kinds as usize, EventKind::ALL.len());
    assert_eq!(reader.header().warmup_ms, warmup.as_millis());
    let mut parsed = 0u64;
    let mut last_t = SimTime::ZERO;
    for entry in reader.by_ref() {
        let (at, _event) = entry.expect("every journal line parses back to a typed event");
        assert!(at >= last_t, "journal timestamps must be monotone");
        last_t = at;
        parsed += 1;
    }
    assert_eq!(
        reader.lines_read() as u64,
        jsonl.records() + 1,
        "header line plus one JSONL line per recorded event"
    );
    std::fs::remove_file(&path).ok();
    assert_eq!(parsed, jsonl.records(), "every event line parsed");
    assert_eq!(
        jsonl.records(),
        summary.total_events(),
        "both tee branches saw every event"
    );
}

#[test]
fn null_sink_run_equals_untraced_run() {
    // The default NullSink path must not perturb the simulation: the same
    // seed gives bit-identical headline metrics with and without the
    // run_traced plumbing.
    let plain = World::new(WorldConfig::small_test(41)).run();
    let (traced, _) = World::new(WorldConfig::small_test(41)).run_traced();
    assert_eq!(plain.traffic, traced.traffic);
    assert_eq!(plain.latency, traced.latency);
    assert_eq!(plain.queries_issued, traced.queries_issued);
    assert_eq!(plain.queries_failed, traced.queries_failed);
}
