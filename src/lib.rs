//! # mp2p — RPCC cooperative-cache consistency over MANET
//!
//! A full reproduction of *"Consistency of Cooperative Caching in Mobile
//! Peer-to-Peer Systems over MANET"* (Cao, Zhang, Xie & Cao, ICDCS 2005):
//! the RPCC relay-peer consistency protocol, its push/pull baselines, and
//! every substrate the paper's GloMoSim evaluation relied on — a
//! deterministic discrete-event kernel, mobility models, a unit-disc
//! wireless stack with TTL flooding and on-demand routing, a cooperative
//! cache, and the measurement instruments behind the paper's figures.
//!
//! This crate re-exports the workspace members under stable module names:
//!
//! * [`sim`] — event queue, simulated time, seeded RNG streams.
//! * [`mobility`] — random waypoint (the paper's model) and friends.
//! * [`net`] — topology snapshots, MAC/PHY link model, flooding, routing.
//! * [`cache`] — versioned items, LRU store, workload generators.
//! * [`metrics`] — traffic/latency/staleness/energy instruments.
//! * [`trace`] — the flight recorder: typed sim-time event tracing.
//! * [`rpcc`] — the protocols ([`rpcc::Rpcc`], [`rpcc::SimplePush`],
//!   [`rpcc::SimplePull`]) and the simulation [`rpcc::World`].
//! * [`experiments`] — Table 1 and Figs. 7–9 as runnable sweeps.
//!
//! # Quick start
//!
//! ```
//! use mp2p::rpcc::{Strategy, World, WorldConfig};
//! use mp2p::sim::SimDuration;
//!
//! let mut config = WorldConfig::small_test(1);
//! config.strategy = Strategy::Rpcc;
//! config.sim_time = SimDuration::from_mins(8);
//! let report = World::new(config).run();
//! println!(
//!     "served {} queries at {:.0} transmissions/min",
//!     report.queries_served(),
//!     report.traffic_per_minute()
//! );
//! ```
//!
//! See `examples/` for scenario walk-throughs and
//! `crates/experiments/src/bin/` for the figure regenerators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mp2p_cache as cache;
pub use mp2p_experiments as experiments;
pub use mp2p_metrics as metrics;
pub use mp2p_mobility as mobility;
pub use mp2p_net as net;
pub use mp2p_rpcc as rpcc;
pub use mp2p_sim as sim;
pub use mp2p_trace as trace;
