//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing harness.
//!
//! The build sandbox has no crates.io access, so this vendored crate
//! implements the (small) subset of the proptest API the workspace's
//! property tests use: the [`proptest!`] macro, [`prop_oneof!`],
//! `prop_assert*`, [`strategy::Strategy`] with `prop_map`/`boxed`,
//! range/tuple/`Just`/`any` strategies, and [`collection::vec`].
//!
//! Semantics differ from real proptest in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   visible in the assertion message, but is not minimised.
//! * **Deterministic generation.** Each test's RNG is seeded from its
//!   module path and name, so a failure reproduces on every run.
//!
//! Both trades keep the crate dependency-free while preserving what the
//! tests actually rely on: broad randomised coverage that fails loudly.

pub mod test_runner {
    //! The per-test RNG and run configuration.

    /// Deterministic splitmix64 generator; one per `proptest!` test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's name (FNV-1a hash), so each
        /// test draws a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: hash | 1, // never the all-zero state
            }
        }

        /// Next raw 64-bit draw (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Run configuration; only the fields the workspace uses.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config overriding only the case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `pick`
    /// draws one concrete value directly.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred`, re-drawing otherwise.
        ///
        /// Unlike real proptest (which rejects the whole case and may
        /// exhaust a global rejection budget), this stand-in simply
        /// retries locally and panics with `reason` after 1 000 failed
        /// draws — predicates must not be vanishingly selective.
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let strat = self;
            BoxedStrategy(Rc::new(move |rng| strat.pick(rng)))
        }
    }

    /// [`Strategy::prop_filter`] adapter.
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn pick(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let value = self.inner.pick(rng);
                if (self.pred)(&value) {
                    return value;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive draws: {}",
                self.reason
            );
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn pick(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.pick(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased alternatives
    /// (the engine behind [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].pick(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn pick(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn pick(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn pick(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width u64 range: every draw is in bounds.
                        rng.next_u64() as $t
                    } else {
                        lo + rng.below(span) as $t
                    }
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn pick(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn pick(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            // next_f64 is in [0, 1); scale by the next float up so the
            // upper endpoint is reachable (to within one ulp).
            let unit = rng.next_f64() * (1.0 + f64::EPSILON);
            (lo + unit * (hi - lo)).min(hi)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.pick(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy over `T`'s full domain.
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn pick(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec()`]; `hi` is exclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of `element` draws.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `cases` random draws.
///
/// An optional leading `#![proptest_config(expr)]` overrides the default
/// [`test_runner::ProptestConfig`] for every test in the block.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut __rng);)+
                    // Bodies may `return Ok(())` early, as under real
                    // proptest (which runs them in a Result closure).
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), &'static str> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__reason) = __outcome {
                        panic!("property case rejected: {__reason}");
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @body ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Uniform choice between the listed strategies (all must share a value
/// type). Weights are not supported by this stand-in.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let mut c = crate::test_runner::TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb, "same name, same stream");
        assert_ne!(va, vc, "different names diverge");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_size(mut v in crate::collection::vec(0u64..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            v.sort_unstable();
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_map_and_just_compose(step in prop_oneof![
            Just(0u64),
            (1u64..4, 0u64..2).prop_map(|(a, b)| a + b),
            any::<u8>().prop_map(u64::from),
        ]) {
            prop_assert!(step <= u64::from(u8::MAX));
        }

        #[test]
        fn filter_and_inclusive_float_range_compose(
            p in (0.0f64..=1.0).prop_filter("upper half only", |p| *p >= 0.5),
        ) {
            prop_assert!((0.5..=1.0).contains(&p));
        }
    }
}
