//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! bench harness.
//!
//! The build sandbox has no crates.io access, so this vendored crate
//! implements the subset of the criterion API the workspace's benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::finish`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Statistics are deliberately simple: each benchmark does one warm-up
//! call, then times batches until either a wall-clock budget or an
//! iteration cap is hit, and prints the mean per-iteration time. There
//! is no outlier analysis, no plotting, and no saved baselines — the
//! point is that `cargo bench` builds, runs, and reports sane numbers
//! without network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget once warmed up.
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// Hard cap on timed iterations per benchmark.
const MAX_ITERS: u64 = 1_000;

/// The top-level harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{id}"), f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by a
    /// wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{id}", self.name), f);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` (one warm-up call first).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(routine());
        let budget_start = Instant::now();
        while self.iters < MAX_ITERS && budget_start.elapsed() < TIME_BUDGET {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_benchmark<F>(label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {label}: no timed iterations");
        return;
    }
    let mean = bencher.elapsed / bencher.iters as u32;
    println!("  {label}: mean {mean:?} over {} iters", bencher.iters);
}

/// Prevents the optimiser from discarding `value` (re-export shim; the
/// workspace benches use `std::hint::black_box` directly).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles bench functions into one group runner named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, running every listed group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        let mut calls = 0u64;
        group.sample_size(10).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // One warm-up call plus at least one timed iteration.
        assert!(calls >= 2);
    }
}
